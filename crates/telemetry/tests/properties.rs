//! Property-based tests for the telemetry recorder: histogram merges
//! must be exact (associative and commutative), shard-local recorders
//! merged upward must equal one global recorder, and the fixed bucket
//! layout must survive a JSONL export/parse round trip.

use bytecache_telemetry::export::{parse_jsonl, to_jsonl};
use bytecache_telemetry::hist::{bucket_bounds, bucket_index, Histogram, BUCKETS};
use bytecache_telemetry::{Event, EventKind, Recorder};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_commutative(a in proptest::collection::vec(any::<u64>(), 0..64),
                            b in proptest::collection::vec(any::<u64>(), 0..64)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in proptest::collection::vec(any::<u64>(), 0..48),
                            b in proptest::collection::vec(any::<u64>(), 0..48),
                            c in proptest::collection::vec(any::<u64>(), 0..48)) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊔ b) ⊔ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊔ (b ⊔ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_equals_recording_the_concatenation(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&both));
    }

    #[test]
    fn shard_local_recorders_merge_to_the_global_recorder(
        samples in proptest::collection::vec((0usize..4, any::<u64>()), 0..128),
    ) {
        // One recorder per shard, fed only that shard's samples…
        let mut shards: Vec<Recorder> = (0..4).map(|_| Recorder::enabled()).collect();
        // …versus one global recorder fed the whole stream.
        let mut global = Recorder::enabled();
        for &(shard, value) in &samples {
            shards[shard].record("latency_us", value);
            shards[shard].count("packets", 1);
            shards[shard].count_l("shard.packets", Some(shard as u64), 1);
            global.record("latency_us", value);
            global.count("packets", 1);
            global.count_l("shard.packets", Some(shard as u64), 1);
        }
        let mut merged = Recorder::enabled();
        for shard in &shards {
            merged.merge(shard);
        }
        prop_assert_eq!(merged.hist("latency_us"), global.hist("latency_us"));
        prop_assert_eq!(merged.counter("packets"), global.counter("packets"));
        for shard in 0..4u64 {
            prop_assert_eq!(
                merged.counter_l("shard.packets", Some(shard)),
                global.counter_l("shard.packets", Some(shard))
            );
        }
    }

    #[test]
    fn bucket_bounds_round_trip_through_jsonl(
        values in proptest::collection::vec(any::<u64>(), 1..128),
        count in 1u64..1000,
        flow in any::<u64>(),
    ) {
        let mut rec = Recorder::enabled();
        for &v in &values {
            rec.record("hist", v);
            rec.record_l("hist.labelled", Some(7), v);
        }
        rec.count("counter", count);
        rec.gauge("gauge", count);
        rec.event(Event::new(EventKind::Eviction).at_us(count).flow(flow).details(1, 2));
        let text = to_jsonl(&rec, &[("experiment", "proptest")]);
        let (back, meta) = parse_jsonl(&text).expect("exporter output must parse");
        prop_assert_eq!(&meta[..], &[("experiment".to_string(), "proptest".to_string())][..]);
        // The parsed histogram must be bucket-for-bucket identical —
        // same fixed layout, same counts, same summary stats.
        prop_assert_eq!(back.hist("hist"), rec.hist("hist"));
        prop_assert_eq!(back.hist_l("hist.labelled", Some(7)), rec.hist_l("hist.labelled", Some(7)));
        prop_assert_eq!(back.counter("counter"), count);
        prop_assert_eq!(back.gauge_value("gauge"), Some(count));
        prop_assert_eq!(back.event_count(), 1);
    }

    #[test]
    fn bucket_index_maps_into_its_own_bounds(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}] (bucket {i})");
    }
}

#[test]
fn bucket_index_edges_are_exact() {
    // The two extremes of the u64 range land in the outermost buckets,
    // and recording them keeps every derived statistic consistent.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_bounds(0), (0, 0));
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    assert_eq!(bucket_index(1 << 63), BUCKETS - 1);
    assert_eq!(bucket_bounds(BUCKETS - 1), (1 << 63, u64::MAX));
    // One below the top bucket's low bound belongs to the bucket before.
    assert_eq!(bucket_index((1 << 63) - 1), BUCKETS - 2);

    let mut h = Histogram::new();
    h.record(0);
    h.record(u64::MAX);
    assert_eq!(h.count(), 2);
    assert_eq!(h.min(), Some(0));
    assert_eq!(h.max(), Some(u64::MAX));
    assert_eq!(h.sum(), u64::MAX, "sum saturates, not wraps");
    assert_eq!(h.nonzero_buckets(), vec![(0, 0, 1), (1 << 63, u64::MAX, 1)]);
}

#[test]
fn from_parts_rejects_foreign_bucket_layouts() {
    // A bucket whose bounds don't sit on the fixed power-of-two grid
    // must be refused — otherwise merges would silently misalign.
    let err = Histogram::from_parts(1, 5, 5, 5, &[(3, 9, 1)]);
    assert!(err.is_err());
}
