//! Bounded structured event ring.
//!
//! Events are small fixed-size records — no allocation per event — and
//! the ring drops the *oldest* events once full, counting what it
//! dropped. This keeps the hot path bounded: a pathological run can
//! never grow the ring past its capacity, and the exporter reports the
//! drop count so a truncated ring is visible in the snapshot.

/// Default ring capacity (events kept per recorder).
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// What happened. Each variant documents how the generic `a`/`b`
/// detail fields of [`Event`] are used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Decoder could not reconstruct a packet. `a` = failure class
    /// (1 missing reference, 2 checksum mismatch, 3 bad region,
    /// 4 malformed, 5 epoch flush, 6 stale generation),
    /// `b` = TCP sequence number.
    DecodeFailure,
    /// Decoder emitted NACK feedback. `a` = ids in the batch.
    Nack,
    /// Encoder-side policy flushed the cache. `a` = new epoch.
    PolicyFlush,
    /// Decoder flushed its cache on an epoch bump. `a` = new epoch.
    EpochFlush,
    /// Cache evicted an entry to meet its byte budget. `a` = packet
    /// id, `b` = payload bytes freed.
    Eviction,
    /// TCP sender retransmitted a segment. `a` = stream offset.
    Retransmit,
    /// TCP retransmission timer fired. `a` = stream offset,
    /// `b` = RTO in microseconds.
    Timeout,
    /// Channel dropped a packet. `a` = serialized size in bytes.
    PacketLost,
    /// Channel corrupted a packet. `a` = serialized size in bytes.
    PacketCorrupted,
    /// Simulator had no route for a packet.
    NoRoute,
    /// A control-channel payload failed to parse. `a` = payload length
    /// in bytes, `b` = bytes of trailing garbage rejected.
    ControlMalformed,
    /// Decoder requested re-emission of a diverged cache entry.
    /// `a` = shim packet id, `b` = retry number (0 = first request).
    RecoveryRequest,
    /// Encoder re-emitted a cache entry raw and tombstoned it.
    /// `a` = shim packet id, `b` = payload bytes re-sent.
    RecoveryRepair,
    /// Cache-generation resynchronization. On the decoder: a resync was
    /// requested or a new generation adopted; on the encoder: the cache
    /// was flushed and the generation bumped. `a` = generation,
    /// `b` = 1 when the event is the encoder-side flush.
    Resync,
    /// Decoder cache wiped by fault injection (simulated restart).
    /// `a` = entries lost, `b` = bytes lost.
    CacheWipe,
    /// Graceful-degradation policy changed state. `a` = 1 entering
    /// degraded (pass-through) mode, 0 recovering, `b` = estimated loss
    /// in basis points.
    Degrade,
    /// Client handoff between gateways. `a` = 1 for an attach, 0 for a
    /// detach, `b` = the gateway's node index.
    Handoff,
    /// Decoder cache migrated to a new gateway (`Handoff::Migrate`).
    /// `a` = serialized transfer size in bytes, `b` = the carried-over
    /// cache generation (`u64::MAX` when none was synced yet).
    CacheMigrate,
}

impl EventKind {
    /// Stable snake_case name used by the JSONL exporter.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::DecodeFailure => "decode_failure",
            EventKind::Nack => "nack",
            EventKind::PolicyFlush => "policy_flush",
            EventKind::EpochFlush => "epoch_flush",
            EventKind::Eviction => "eviction",
            EventKind::Retransmit => "retransmit",
            EventKind::Timeout => "timeout",
            EventKind::PacketLost => "packet_lost",
            EventKind::PacketCorrupted => "packet_corrupted",
            EventKind::NoRoute => "no_route",
            EventKind::ControlMalformed => "control_malformed",
            EventKind::RecoveryRequest => "recovery_request",
            EventKind::RecoveryRepair => "recovery_repair",
            EventKind::Resync => "resync",
            EventKind::CacheWipe => "cache_wipe",
            EventKind::Degrade => "degrade",
            EventKind::Handoff => "handoff",
            EventKind::CacheMigrate => "cache_migrate",
        }
    }

    /// Inverse of [`EventKind::as_str`].
    #[must_use]
    pub fn from_name(s: &str) -> Option<EventKind> {
        Some(match s {
            "decode_failure" => EventKind::DecodeFailure,
            "nack" => EventKind::Nack,
            "policy_flush" => EventKind::PolicyFlush,
            "epoch_flush" => EventKind::EpochFlush,
            "eviction" => EventKind::Eviction,
            "retransmit" => EventKind::Retransmit,
            "timeout" => EventKind::Timeout,
            "packet_lost" => EventKind::PacketLost,
            "packet_corrupted" => EventKind::PacketCorrupted,
            "no_route" => EventKind::NoRoute,
            "control_malformed" => EventKind::ControlMalformed,
            "recovery_request" => EventKind::RecoveryRequest,
            "recovery_repair" => EventKind::RecoveryRepair,
            "resync" => EventKind::Resync,
            "cache_wipe" => EventKind::CacheWipe,
            "degrade" => EventKind::Degrade,
            "handoff" => EventKind::Handoff,
            "cache_migrate" => EventKind::CacheMigrate,
            _ => return None,
        })
    }
}

/// One structured event. Fixed-size and `Copy` so recording never
/// allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Simulated time in microseconds (0 outside a simulation).
    pub at_us: u64,
    /// Compact flow tag ([`FlowId` FNV hash](https://en.wikipedia.org/wiki/FNV);
    /// 0 when the event is not flow-specific).
    pub flow: u64,
    /// Shard index of the recorder that produced the event.
    pub shard: u32,
    /// Kind-specific detail (see [`EventKind`]).
    pub a: u64,
    /// Kind-specific detail (see [`EventKind`]).
    pub b: u64,
}

impl Event {
    /// A bare event of `kind` with every other field zeroed.
    #[must_use]
    pub fn new(kind: EventKind) -> Event {
        Event {
            kind,
            at_us: 0,
            flow: 0,
            shard: 0,
            a: 0,
            b: 0,
        }
    }

    /// Set the simulated timestamp (builder style).
    #[must_use]
    pub fn at_us(mut self, at_us: u64) -> Event {
        self.at_us = at_us;
        self
    }

    /// Set the flow tag (builder style).
    #[must_use]
    pub fn flow(mut self, flow: u64) -> Event {
        self.flow = flow;
        self
    }

    /// Set the detail fields (builder style).
    #[must_use]
    pub fn details(mut self, a: u64, b: u64) -> Event {
        self.a = a;
        self.b = b;
        self
    }
}

/// Bounded drop-oldest ring of [`Event`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRing {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventRing {
    /// An empty ring holding at most `capacity` events. The buffer is
    /// grown lazily, so an unused ring costs nothing.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Append an event, dropping the oldest if the ring is full.
    pub fn push(&mut self, event: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events in arrival order (oldest retained first).
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (newer, older) = self.buf.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events discarded because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Append every event of `other` (oldest first), respecting this
    /// ring's own bound.
    pub fn merge(&mut self, other: &EventRing) {
        for e in other.iter() {
            self.push(*e);
        }
        self.dropped += other.dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = EventRing::with_capacity(3);
        for i in 0..5u64 {
            r.push(Event::new(EventKind::Eviction).details(i, 0));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn merge_appends_in_order() {
        let mut a = EventRing::with_capacity(10);
        let mut b = EventRing::with_capacity(10);
        a.push(Event::new(EventKind::Nack).details(1, 0));
        b.push(Event::new(EventKind::Nack).details(2, 0));
        b.push(Event::new(EventKind::Nack).details(3, 0));
        a.merge(&b);
        let got: Vec<u64> = a.iter().map(|e| e.a).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            EventKind::DecodeFailure,
            EventKind::Nack,
            EventKind::PolicyFlush,
            EventKind::EpochFlush,
            EventKind::Eviction,
            EventKind::Retransmit,
            EventKind::Timeout,
            EventKind::PacketLost,
            EventKind::PacketCorrupted,
            EventKind::NoRoute,
            EventKind::ControlMalformed,
            EventKind::RecoveryRequest,
            EventKind::RecoveryRepair,
            EventKind::Resync,
            EventKind::CacheWipe,
            EventKind::Degrade,
            EventKind::Handoff,
            EventKind::CacheMigrate,
        ] {
            assert_eq!(EventKind::from_name(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::from_name("nope"), None);
    }
}
