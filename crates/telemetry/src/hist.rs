//! Mergeable log-bucketed histograms.
//!
//! The bucket layout is **fixed** (one bucket per power of two, 65
//! buckets covering the full `u64` range), so merging two histograms is
//! element-wise addition — exact, associative and commutative. This is
//! the same contract the engine's `CacheStats::merge` relies on: a
//! merge of shard-local recorders equals one global recorder fed the
//! union of the samples, in any order and any grouping.

/// Number of buckets: bucket 0 holds the value `0`, bucket `i` (for
/// `i >= 1`) holds values with bit length `i`, i.e. `[2^(i-1), 2^i)`.
pub const BUCKETS: usize = 65;

/// Index of the bucket a value falls into.
#[must_use]
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive `(low, high)` bounds of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A log-bucketed histogram over `u64` samples.
///
/// Tracks exact `count`, `sum`, `min` and `max` alongside the bucket
/// array, so means are exact and only quantiles are approximated (to
/// within the bucket resolution of one octave).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` occurrences of `value`.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += n;
    }

    /// Merge another histogram into this one (element-wise bucket
    /// addition; exact because the layout is fixed).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of the recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Approximate quantile (`q` in `[0, 1]`): the midpoint of the
    /// bucket containing the `q`-th sample, clamped to the observed
    /// `[min, max]` range. Empty histograms return `None`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                let mid = lo + (hi - lo) / 2;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The non-empty buckets as `(low, high, count)` triples, in
    /// ascending value order.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, n)
            })
            .collect()
    }

    /// Reconstruct a histogram from exported parts. Bucket bounds are
    /// validated against the fixed layout; `Err` carries a description
    /// of the first mismatch.
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: &[(u64, u64, u64)],
    ) -> Result<Histogram, String> {
        let mut h = Histogram::new();
        for &(lo, hi, n) in buckets {
            let index = bucket_index(lo);
            let (want_lo, want_hi) = bucket_bounds(index);
            if (lo, hi) != (want_lo, want_hi) {
                return Err(format!(
                    "bucket bounds [{lo}, {hi}] do not match the fixed layout \
                     ([{want_lo}, {want_hi}] for bucket {index})"
                ));
            }
            h.buckets[index] += n;
        }
        h.count = count;
        h.sum = sum;
        if count > 0 {
            h.min = min;
            h.max = max;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
        // Bounds tile the u64 range with no gaps.
        for i in 1..BUCKETS {
            let (_, prev_hi) = bucket_bounds(i - 1);
            let (lo, _) = bucket_bounds(i);
            assert_eq!(lo, prev_hi + 1);
        }
    }

    #[test]
    fn record_tracks_exact_count_sum_min_max() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        for v in [3u64, 9, 4000, 0, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 4015);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(4000));
        assert!((h.mean() - 803.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for (i, v) in [1u64, 7, 7, 120, 90_000, 0].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
            both.record(*v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn quantile_is_within_bucket_resolution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((256..=767).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), Some(1000));
    }

    #[test]
    fn parts_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 5, 5, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let parts = h.nonzero_buckets();
        let back = Histogram::from_parts(
            h.count(),
            h.sum(),
            h.min().unwrap(),
            h.max().unwrap(),
            &parts,
        )
        .unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn bad_bounds_are_rejected() {
        let err = Histogram::from_parts(1, 5, 5, 5, &[(5, 7, 1)]).unwrap_err();
        assert!(err.contains("fixed layout"), "{err}");
    }
}
