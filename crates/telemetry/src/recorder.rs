//! The [`Recorder`]: one component's counters, gauges, histograms and
//! event ring, with an exact merge.
//!
//! Ownership model: every instrumented component (encoder shard,
//! decoder shard, cache, simulator, TCP node) owns its *own* recorder —
//! there is no shared global and no locking on the hot path. Snapshots
//! are merged upward (shard → bank → gateway → harness) exactly like
//! the engine's `EncoderStats::merge`/`CacheStats::merge`, and the
//! fixed histogram layout makes the merge exact: merging shard-local
//! recorders produces the same state as one global recorder fed the
//! union of the samples.
//!
//! A disabled recorder (the default) reduces every recording call to a
//! single branch on a bool, so instrumentation can stay compiled in.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::time::Instant;

use crate::event::{Event, EventRing};
use crate::hist::Histogram;

/// Metric name: `&'static str` on the recording path (no allocation),
/// owned only when reconstructed by the JSONL parser.
pub type MetricName = Cow<'static, str>;

/// Map key: metric name plus an optional numeric label (shard index,
/// flow tag). `BTreeMap` keeps export order deterministic.
pub type Key = (MetricName, Option<u64>);

/// An opaque span-start token; see [`Recorder::span_start`].
///
/// `None` when the recorder was disabled at span start, making the
/// whole span a no-op.
#[derive(Debug, Clone, Copy)]
pub struct SpanToken(Option<Instant>);

/// Counters, gauges, log-bucketed histograms and a bounded event ring.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recorder {
    enabled: bool,
    shard: u32,
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, u64>,
    hists: BTreeMap<Key, Histogram>,
    events: EventRing,
}

impl Recorder {
    /// A disabled recorder: every recording call is a no-op costing one
    /// branch. This is the default state of all instrumented components.
    #[must_use]
    pub fn disabled() -> Recorder {
        Recorder::default()
    }

    /// An enabled recorder.
    #[must_use]
    pub fn enabled() -> Recorder {
        Recorder {
            enabled: true,
            ..Recorder::default()
        }
    }

    /// Whether recording calls currently take effect.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable recording. Already-recorded data is retained.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Tag this recorder (and every event it records) with a shard
    /// index, for per-shard breakdowns after merging.
    pub fn set_shard(&mut self, shard: u32) {
        self.shard = shard;
    }

    /// The shard tag.
    #[must_use]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    // ---- counters ------------------------------------------------------

    /// Add `n` to the counter `name`.
    #[inline]
    pub fn count(&mut self, name: &'static str, n: u64) {
        self.count_l(name, None, n);
    }

    /// Add `n` to the counter `name` under a numeric label.
    #[inline]
    pub fn count_l(&mut self, name: &'static str, label: Option<u64>, n: u64) {
        if !self.enabled {
            return;
        }
        *self
            .counters
            .entry((Cow::Borrowed(name), label))
            .or_insert(0) += n;
    }

    /// Current value of a counter (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counter_l(name, None)
    }

    /// Current value of a labelled counter (0 when absent).
    #[must_use]
    pub fn counter_l(&self, name: &'static str, label: Option<u64>) -> u64 {
        self.counters
            .get(&(Cow::Borrowed(name), label))
            .copied()
            .unwrap_or(0)
    }

    // ---- gauges --------------------------------------------------------

    /// Set the gauge `name` to `value` (last-write-wins within one
    /// recorder; merging *sums* gauges, so shard occupancies add up).
    #[inline]
    pub fn gauge(&mut self, name: &'static str, value: u64) {
        self.gauge_l(name, None, value);
    }

    /// Set a labelled gauge.
    #[inline]
    pub fn gauge_l(&mut self, name: &'static str, label: Option<u64>, value: u64) {
        if !self.enabled {
            return;
        }
        self.gauges.insert((Cow::Borrowed(name), label), value);
    }

    /// Current value of a gauge (`None` when never set).
    #[must_use]
    pub fn gauge_value(&self, name: &'static str) -> Option<u64> {
        self.gauges.get(&(Cow::Borrowed(name), None)).copied()
    }

    // ---- histograms ----------------------------------------------------

    /// Record one sample into the histogram `name`.
    #[inline]
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.record_l(name, None, value);
    }

    /// Record one sample into a labelled histogram.
    #[inline]
    pub fn record_l(&mut self, name: &'static str, label: Option<u64>, value: u64) {
        if !self.enabled {
            return;
        }
        self.hists
            .entry((Cow::Borrowed(name), label))
            .or_default()
            .record(value);
    }

    /// The histogram `name`, if any samples were recorded.
    #[must_use]
    pub fn hist(&self, name: &'static str) -> Option<&Histogram> {
        self.hist_l(name, None)
    }

    /// A labelled histogram, if any samples were recorded.
    #[must_use]
    pub fn hist_l(&self, name: &'static str, label: Option<u64>) -> Option<&Histogram> {
        self.hists.get(&(Cow::Borrowed(name), label))
    }

    // ---- spans ---------------------------------------------------------

    /// Start a span. Returns a token to pass to [`Recorder::span_end`];
    /// when the recorder is disabled the token is inert and the span
    /// costs one branch at each end.
    #[inline]
    #[must_use]
    pub fn span_start(&self) -> SpanToken {
        SpanToken(self.enabled.then(Instant::now))
    }

    /// End a span, recording its wall-clock duration in nanoseconds
    /// into the histogram `name`.
    #[inline]
    pub fn span_end(&mut self, name: &'static str, token: SpanToken) {
        if let Some(start) = token.0 {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.record(name, ns);
        }
    }

    // ---- events --------------------------------------------------------

    /// Push a structured event onto the ring, stamping it with this
    /// recorder's shard tag.
    #[inline]
    pub fn event(&mut self, mut event: Event) {
        if !self.enabled {
            return;
        }
        event.shard = self.shard;
        self.events.push(event);
    }

    /// Retained events in arrival order.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Events discarded because the ring was full.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.events.dropped()
    }

    /// Count of retained events of one kind.
    #[must_use]
    pub fn events_of(&self, kind: crate::event::EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    // ---- merge / export hooks -----------------------------------------

    /// Merge another recorder's data into this one: counters, gauges
    /// and histogram buckets add element-wise; events append in order
    /// (respecting this ring's bound). The merge is a pure data
    /// operation — the enabled flags of both sides are ignored and
    /// unchanged.
    pub fn merge(&mut self, other: &Recorder) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
        self.events.merge(&other.events);
    }

    /// Drop every wall-clock-derived series (the `span.*` histograms,
    /// which time host execution rather than simulated behaviour). Use
    /// before comparing two recorders for simulation-level equality —
    /// e.g. the PDES determinism checks, where serial and parallel runs
    /// must match on every simulated metric but naturally differ in
    /// host timing.
    pub fn strip_wall_clock(&mut self) {
        self.hists.retain(|(name, _), _| !name.starts_with("span."));
    }

    /// Whether nothing was ever recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.events.is_empty()
    }

    /// All counters in deterministic (name, label) order.
    pub fn counters(&self) -> impl Iterator<Item = (&Key, u64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// All gauges in deterministic (name, label) order.
    pub fn gauges(&self) -> impl Iterator<Item = (&Key, u64)> {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// All histograms in deterministic (name, label) order.
    pub fn hists(&self) -> impl Iterator<Item = (&Key, &Histogram)> {
        self.hists.iter()
    }

    /// Insert a counter with an owned name (JSONL parser only).
    pub(crate) fn insert_counter(&mut self, key: Key, value: u64) {
        *self.counters.entry(key).or_insert(0) += value;
    }

    /// Insert a gauge with an owned name (JSONL parser only).
    pub(crate) fn insert_gauge(&mut self, key: Key, value: u64) {
        self.gauges.insert(key, value);
    }

    /// Insert a histogram with an owned name (JSONL parser only).
    pub(crate) fn insert_hist(&mut self, key: Key, hist: Histogram) {
        self.hists.entry(key).or_default().merge(&hist);
    }

    /// Push a parsed event verbatim, keeping its original shard tag
    /// (JSONL parser only).
    pub(crate) fn insert_event(&mut self, event: Event) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::disabled();
        r.count("a", 5);
        r.gauge("g", 7);
        r.record("h", 3);
        let t = r.span_start();
        r.span_end("span", t);
        r.event(Event::new(EventKind::Nack));
        assert!(r.is_empty());
    }

    #[test]
    fn enabled_recorder_accumulates() {
        let mut r = Recorder::enabled();
        r.count("pkts", 2);
        r.count("pkts", 3);
        r.count_l("shard.pkts", Some(1), 4);
        r.gauge("bytes", 10);
        r.gauge("bytes", 20);
        r.record("sz", 100);
        r.record("sz", 200);
        assert_eq!(r.counter("pkts"), 5);
        assert_eq!(r.counter_l("shard.pkts", Some(1)), 4);
        assert_eq!(r.gauge_value("bytes"), Some(20));
        assert_eq!(r.hist("sz").unwrap().count(), 2);
    }

    #[test]
    fn span_records_nanoseconds() {
        let mut r = Recorder::enabled();
        let t = r.span_start();
        r.span_end("span.test_ns", t);
        let h = r.hist("span.test_ns").unwrap();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn strip_wall_clock_drops_only_span_histograms() {
        let mut r = Recorder::enabled();
        r.record("hop_latency_us", 42);
        let t = r.span_start();
        r.span_end("span.sim_run_ns", t);
        r.count("pkts", 1);
        r.strip_wall_clock();
        assert!(r.hist("span.sim_run_ns").is_none());
        assert_eq!(r.hist("hop_latency_us").unwrap().count(), 1);
        assert_eq!(r.counter("pkts"), 1);
    }

    #[test]
    fn merge_sums_everything_and_stamps_shards() {
        let mut a = Recorder::enabled();
        a.set_shard(0);
        let mut b = Recorder::enabled();
        b.set_shard(3);
        a.count("n", 1);
        b.count("n", 2);
        a.gauge("occ", 10);
        b.gauge("occ", 5);
        a.record("h", 1);
        b.record("h", 1 << 20);
        b.event(Event::new(EventKind::Eviction));
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.gauge_value("occ"), Some(15));
        assert_eq!(a.hist("h").unwrap().count(), 2);
        let ev: Vec<_> = a.events().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].shard, 3, "merged events keep their shard tag");
    }
}
