//! JSONL + summary exporters, and a small exact parser for round-trip
//! verification.
//!
//! The workspace deliberately carries no JSON dependency (the same
//! stance as the experiment harnesses' hand-rolled `to_json`), so this
//! module writes — and parses back — a line-oriented subset: one JSON
//! object per line, string/unsigned-integer/array values only.
//!
//! Line shapes:
//!
//! ```text
//! {"type":"meta","key":"experiment","value":"sweep"}
//! {"type":"counter","key":"encoder.packets","value":42}
//! {"type":"counter","key":"shard.packets","label":3,"value":17}
//! {"type":"gauge","key":"cache.bytes_used","value":123456}
//! {"type":"hist","key":"tcp.rtt_us","count":9,"sum":..,"min":..,"max":..,
//!  "buckets":[[lo,hi,count],...]}
//! {"type":"event","kind":"eviction","at_us":0,"flow":0,"shard":1,"a":7,"b":1400}
//! {"type":"events_dropped","value":0}
//! ```
//!
//! Histogram buckets carry their `[lo, hi]` bounds explicitly; the
//! parser validates them against the fixed layout, which is what the
//! "bucket boundaries round-trip" property test exercises.

use std::borrow::Cow;
use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::hist::Histogram;
use crate::recorder::Recorder;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn key_fields(out: &mut String, key: &(Cow<'static, str>, Option<u64>)) {
    let _ = write!(out, "\"key\":\"{}\"", escape(&key.0));
    if let Some(label) = key.1 {
        let _ = write!(out, ",\"label\":{label}");
    }
}

/// Serialize a recorder as JSONL. `meta` lines come first (experiment
/// name, scale flags, …), then counters, gauges and histograms in
/// deterministic key order, then events in arrival order.
#[must_use]
pub fn to_jsonl(rec: &Recorder, meta: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (k, v) in meta {
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"key\":\"{}\",\"value\":\"{}\"}}",
            escape(k),
            escape(v)
        );
    }
    for (key, value) in rec.counters() {
        out.push_str("{\"type\":\"counter\",");
        key_fields(&mut out, key);
        let _ = writeln!(out, ",\"value\":{value}}}");
    }
    for (key, value) in rec.gauges() {
        out.push_str("{\"type\":\"gauge\",");
        key_fields(&mut out, key);
        let _ = writeln!(out, ",\"value\":{value}}}");
    }
    for (key, hist) in rec.hists() {
        if hist.count() == 0 {
            continue;
        }
        out.push_str("{\"type\":\"hist\",");
        key_fields(&mut out, key);
        let _ = write!(
            out,
            ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            hist.count(),
            hist.sum(),
            hist.min().unwrap_or(0),
            hist.max().unwrap_or(0)
        );
        for (i, (lo, hi, n)) in hist.nonzero_buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{lo},{hi},{n}]");
        }
        out.push_str("]}\n");
    }
    for e in rec.events() {
        let _ = writeln!(
            out,
            "{{\"type\":\"event\",\"kind\":\"{}\",\"at_us\":{},\"flow\":{},\
             \"shard\":{},\"a\":{},\"b\":{}}}",
            e.kind.as_str(),
            e.at_us,
            e.flow,
            e.shard,
            e.a,
            e.b
        );
    }
    let _ = writeln!(
        out,
        "{{\"type\":\"events_dropped\",\"value\":{}}}",
        rec.events_dropped()
    );
    out
}

/// Human-readable snapshot summary: counters and gauges as a list,
/// histograms with count/mean/p50/p99/max, events tallied by kind.
#[must_use]
pub fn summary(rec: &Recorder) -> String {
    fn label(key: &(Cow<'static, str>, Option<u64>)) -> String {
        match key.1 {
            Some(l) => format!("{}[{}]", key.0, l),
            None => key.0.to_string(),
        }
    }
    let mut out = String::new();
    out.push_str("telemetry summary\n");
    for (key, v) in rec.counters() {
        let _ = writeln!(out, "  counter {:<36} {v}", label(key));
    }
    for (key, v) in rec.gauges() {
        let _ = writeln!(out, "  gauge   {:<36} {v}", label(key));
    }
    for (key, h) in rec.hists() {
        if h.count() == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  hist    {:<36} n={} mean={:.1} p50={} p99={} max={}",
            label(key),
            h.count(),
            h.mean(),
            h.quantile(0.5).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0),
            h.max().unwrap_or(0)
        );
    }
    let mut kinds: Vec<(&'static str, usize)> = Vec::new();
    for e in rec.events() {
        match kinds.iter_mut().find(|(k, _)| *k == e.kind.as_str()) {
            Some((_, n)) => *n += 1,
            None => kinds.push((e.kind.as_str(), 1)),
        }
    }
    kinds.sort_unstable();
    for (kind, n) in kinds {
        let _ = writeln!(out, "  events  {kind:<36} {n}");
    }
    if rec.events_dropped() > 0 {
        let _ = writeln!(
            out,
            "  events  (dropped, ring full)              {}",
            rec.events_dropped()
        );
    }
    out
}

// ---- minimal JSON value parser ----------------------------------------

/// A parsed JSON value (the subset the exporter emits).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    /// Unsigned integer (the exporter never emits signs or fractions).
    Num(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered pairs.
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.s
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                c => return Err(format!("expected ',' or '}}', got '{}'", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                c => return Err(format!("expected ',' or ']', got '{}'", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .s
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .s
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "short \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?,
                            );
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                c => {
                    // Re-scan multi-byte UTF-8 sequences whole.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let bytes = self
                            .s
                            .get(start..start + width)
                            .ok_or_else(|| "truncated UTF-8".to_string())?;
                        out.push_str(std::str::from_utf8(bytes).map_err(|e| e.to_string())?);
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.s.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn field_num(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::num)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

/// Parse a snapshot written by [`to_jsonl`] back into a [`Recorder`]
/// (and the meta lines). Histogram bucket bounds are validated against
/// the fixed layout; any malformed line fails the whole parse.
pub fn parse_jsonl(text: &str) -> Result<(Recorder, Vec<(String, String)>), String> {
    let mut rec = Recorder::enabled();
    let mut meta = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = (|| -> Result<(), String> {
            let mut p = Parser::new(line);
            let obj = p.value()?;
            p.skip_ws();
            if p.pos != p.s.len() {
                return Err("trailing bytes after object".into());
            }
            let typ = obj
                .get("type")
                .and_then(Json::str)
                .ok_or("missing 'type'")?;
            let key = || -> Result<(Cow<'static, str>, Option<u64>), String> {
                let name = obj
                    .get("key")
                    .and_then(Json::str)
                    .ok_or("missing 'key'")?
                    .to_string();
                Ok((Cow::Owned(name), obj.get("label").and_then(Json::num)))
            };
            match typ {
                "meta" => {
                    meta.push((
                        obj.get("key")
                            .and_then(Json::str)
                            .ok_or("missing 'key'")?
                            .to_string(),
                        obj.get("value")
                            .and_then(Json::str)
                            .ok_or("missing 'value'")?
                            .to_string(),
                    ));
                }
                "counter" => rec.insert_counter(key()?, field_num(&obj, "value")?),
                "gauge" => rec.insert_gauge(key()?, field_num(&obj, "value")?),
                "hist" => {
                    let buckets = match obj.get("buckets") {
                        Some(Json::Arr(items)) => items
                            .iter()
                            .map(|b| match b {
                                Json::Arr(t) if t.len() == 3 => {
                                    match (t[0].num(), t[1].num(), t[2].num()) {
                                        (Some(lo), Some(hi), Some(n)) => Ok((lo, hi, n)),
                                        _ => Err("non-numeric bucket triple".to_string()),
                                    }
                                }
                                _ => Err("bucket is not a [lo,hi,count] triple".to_string()),
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                        _ => return Err("missing 'buckets' array".into()),
                    };
                    let h = Histogram::from_parts(
                        field_num(&obj, "count")?,
                        field_num(&obj, "sum")?,
                        field_num(&obj, "min")?,
                        field_num(&obj, "max")?,
                        &buckets,
                    )?;
                    rec.insert_hist(key()?, h);
                }
                "event" => {
                    let kind_name = obj
                        .get("kind")
                        .and_then(Json::str)
                        .ok_or("missing 'kind'")?;
                    let kind = EventKind::from_name(kind_name)
                        .ok_or_else(|| format!("unknown event kind '{kind_name}'"))?;
                    rec.insert_event(Event {
                        kind,
                        at_us: field_num(&obj, "at_us")?,
                        flow: field_num(&obj, "flow")?,
                        shard: u32::try_from(field_num(&obj, "shard")?)
                            .map_err(|e| e.to_string())?,
                        a: field_num(&obj, "a")?,
                        b: field_num(&obj, "b")?,
                    });
                }
                "events_dropped" => {
                    // Informational; drops are re-counted on re-export
                    // only if this ring overflows again.
                    let _ = field_num(&obj, "value")?;
                }
                other => return Err(format!("unknown line type '{other}'")),
            }
            Ok(())
        })();
        parsed.map_err(|e| format!("line {}: {e}", lineno + 1))?;
    }
    Ok((rec, meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::enabled();
        r.set_shard(2);
        r.count("encoder.packets", 10);
        r.count_l("shard.packets", Some(2), 10);
        r.gauge("cache.bytes_used", 12345);
        r.record("encode.wire_bytes", 0);
        r.record("encode.wire_bytes", 700);
        r.record("encode.wire_bytes", 1 << 50);
        r.event(
            Event::new(EventKind::Eviction)
                .at_us(99)
                .flow(7)
                .details(3, 1400),
        );
        r.event(Event::new(EventKind::PolicyFlush).details(1, 0));
        r
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let r = sample_recorder();
        let meta = [("experiment", "unit \"quoted\"\n"), ("quick", "true")];
        let text = to_jsonl(&r, &meta);
        let (back, got_meta) = parse_jsonl(&text).unwrap();
        assert_eq!(got_meta.len(), 2);
        assert_eq!(got_meta[0].1, "unit \"quoted\"\n");
        // Re-export must be byte-identical: same counters, gauges,
        // histogram buckets (bounds included) and events.
        assert_eq!(to_jsonl(&back, &meta), text);
        assert_eq!(back.counter("encoder.packets"), 10);
        assert_eq!(back.hist("encode.wire_bytes").unwrap().count(), 3);
        assert_eq!(back.events().count(), 2);
        assert_eq!(back.events().next().unwrap().shard, 2);
    }

    #[test]
    fn corrupt_bounds_fail_parse() {
        let r = sample_recorder();
        let text = to_jsonl(&r, &[]).replace("[513,1024,", "[513,1025,");
        // If the replace found nothing the test is vacuous — build a
        // hist line by hand instead.
        let bad = if text.contains("1025") {
            text
        } else {
            "{\"type\":\"hist\",\"key\":\"x\",\"count\":1,\"sum\":5,\"min\":5,\"max\":5,\
             \"buckets\":[[5,6,1]]}"
                .to_string()
        };
        assert!(parse_jsonl(&bad).is_err());
    }

    #[test]
    fn summary_mentions_all_sections() {
        let s = summary(&sample_recorder());
        assert!(s.contains("counter encoder.packets"));
        assert!(s.contains("gauge   cache.bytes_used"));
        assert!(s.contains("hist    encode.wire_bytes"));
        assert!(s.contains("events  eviction"));
        assert!(s.contains("shard.packets[2]"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_jsonl("{\"type\":\"counter\"}").is_err());
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl(
            "{\"type\":\"event\",\"kind\":\"zap\",\"at_us\":0,\
                             \"flow\":0,\"shard\":0,\"a\":0,\"b\":0}"
        )
        .is_err());
    }
}
