//! `bytecache-telemetry` — observability for the byte-caching pipeline.
//!
//! The paper's central result is *diagnostic*: aggressive encoding
//! inflates the perceived loss rate, which interacts badly with TCP
//! backoff. Seeing that requires more than end-of-run aggregates — it
//! needs distributions (how long do encodes take? how is perceived
//! loss spread across flows?) and structured events (which packet
//! failed to decode, when, and why). This crate provides both, with
//! three hard constraints inherited from the engine's design:
//!
//! 1. **Exact merges.** Histograms use a fixed log-bucket layout
//!    ([`hist::BUCKETS`] power-of-two buckets), so shard-local or
//!    thread-local recorders merge by element-wise addition — the same
//!    contract as the engine's `CacheStats::merge`. Merging is
//!    associative, commutative, and equal to recording the union of
//!    samples into one recorder.
//! 2. **Cheap when off.** Every component owns a [`Recorder`] that
//!    defaults to disabled; a disabled recording call is one branch, a
//!    disabled span is one branch at each end. Instrumentation stays
//!    compiled in, and a telemetry-off run is byte-identical to an
//!    uninstrumented build's output.
//! 3. **Bounded.** Structured events go into a drop-oldest ring
//!    ([`EventRing`]) with a drop counter, so a pathological run can
//!    never make telemetry unbounded.
//!
//! Snapshots export as JSONL ([`export::to_jsonl`]) or a human summary
//! ([`export::summary`]); [`export::parse_jsonl`] reads a snapshot
//! back for verification (the workspace carries no JSON dependency).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod hist;
pub mod recorder;

pub use event::{Event, EventKind, EventRing};
pub use hist::Histogram;
pub use recorder::{Recorder, SpanToken};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_snapshot() {
        let mut shard0 = Recorder::enabled();
        let mut shard1 = Recorder::enabled();
        shard1.set_shard(1);
        shard0.count("encoder.packets", 3);
        shard1.count("encoder.packets", 4);
        shard0.record("encode.wire_bytes", 120);
        shard1.record("encode.wire_bytes", 1400);
        shard1.event(Event::new(EventKind::PolicyFlush).details(2, 0));

        let mut merged = Recorder::enabled();
        merged.merge(&shard0);
        merged.merge(&shard1);
        assert_eq!(merged.counter("encoder.packets"), 7);
        assert_eq!(merged.hist("encode.wire_bytes").unwrap().count(), 2);
        assert_eq!(merged.events_of(EventKind::PolicyFlush), 1);

        let text = export::to_jsonl(&merged, &[("experiment", "doc")]);
        let (back, meta) = export::parse_jsonl(&text).unwrap();
        assert_eq!(meta, vec![("experiment".to_string(), "doc".to_string())]);
        assert_eq!(export::to_jsonl(&back, &[("experiment", "doc")]), text);
    }
}
