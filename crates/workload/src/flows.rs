//! Flash-crowd flow plans: heavy-tailed object popularity and Poisson
//! arrival churn.
//!
//! The paper's best case is many wireless users fetching *overlapping*
//! content through one cache-equipped gateway. This module builds the
//! open-loop workload side of that regime: a catalog of objects with
//! Zipf-distributed popularity (a flash crowd is a very heavy head) and
//! flows arriving as a Poisson process (exponential inter-arrival
//! times). Departures are the flows' own completions — the generator is
//! open-loop, so offered load does not adapt to congestion.
//!
//! Everything is deterministic given a seed, like the object
//! generators: a plan is a pure function of `(flows, catalog, exponent,
//! mean inter-arrival, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One planned flow: when it starts and which catalog object it fetches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Arrival time (microseconds from simulation start).
    pub start_us: u64,
    /// Catalog index of the requested object (0 = most popular).
    pub object: usize,
}

/// Zipf sampler over catalog ranks: `P(rank r) ∝ 1 / (r + 1)^s`.
///
/// `s = 0` is uniform; `s ≈ 0.9–1.1` matches classic web-popularity
/// measurements; larger `s` concentrates the flash crowd on the head
/// object.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative weights, normalized to end at 1.0.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `catalog` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `catalog` is zero or `s` is not finite.
    #[must_use]
    pub fn new(catalog: usize, s: f64) -> Self {
        assert!(catalog > 0, "catalog must be non-empty");
        assert!(s.is_finite(), "zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(catalog);
        let mut acc = 0.0f64;
        for rank in 0..catalog {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // partition_point: first rank whose cumulative weight covers u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Cumulative Poisson arrival times: `flows` exponential inter-arrival
/// draws with the given mean, in microseconds, non-decreasing.
#[must_use]
pub fn poisson_arrivals(flows: usize, mean_interarrival_us: f64, seed: u64) -> Vec<u64> {
    assert!(
        mean_interarrival_us >= 0.0 && mean_interarrival_us.is_finite(),
        "mean inter-arrival must be finite and non-negative"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF10A_A221);
    let mut t = 0.0f64;
    (0..flows)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -(1.0 - u).ln() * mean_interarrival_us;
            t as u64
        })
        .collect()
}

/// Build a full flash-crowd plan: Poisson arrivals, Zipf object choice.
#[must_use]
pub fn flash_crowd(
    flows: usize,
    catalog: usize,
    exponent: f64,
    mean_interarrival_us: f64,
    seed: u64,
) -> Vec<FlowSpec> {
    let sampler = ZipfSampler::new(catalog, exponent);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x21F_C204D);
    let arrivals = poisson_arrivals(flows, mean_interarrival_us, seed);
    arrivals
        .into_iter()
        .map(|start_us| FlowSpec {
            start_us,
            object: sampler.sample(&mut rng),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a = flash_crowd(200, 32, 0.9, 1_000.0, 7);
        let b = flash_crowd(200, 32, 0.9, 1_000.0, 7);
        assert_eq!(a, b);
        let c = flash_crowd(200, 32, 0.9, 1_000.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_nondecreasing_with_roughly_the_right_mean() {
        let t = poisson_arrivals(2_000, 500.0, 3);
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        let mean = t.last().copied().unwrap() as f64 / t.len() as f64;
        assert!(
            (300.0..700.0).contains(&mean),
            "mean inter-arrival drifted: {mean}"
        );
    }

    #[test]
    fn zipf_head_dominates_and_covers_all_ranks() {
        let sampler = ZipfSampler::new(16, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 16];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[8] * 4,
            "rank 0 should dwarf rank 8: {counts:?}"
        );
        assert!(counts.iter().all(|&c| c > 0), "every rank reachable");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let sampler = ZipfSampler::new(8, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..16_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1_500..2_500).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn flash_crowd_objects_stay_in_catalog() {
        let plan = flash_crowd(500, 12, 1.2, 100.0, 9);
        assert_eq!(plan.len(), 500);
        assert!(plan.iter().all(|f| f.object < 12));
    }
}
