//! Synthetic web-object workloads with calibrated redundancy.
//!
//! The paper evaluates byte caching on real web objects — an e-book in
//! text form (587,567 bytes), video files, and web pages, 40 KB–6 MB —
//! whose defining property for DRE is how much *windowed byte-level
//! redundancy* they carry and how far apart the copies sit (Table I:
//! ebooks 0.3–1 %, video ≈ 0.01 %, web pages 19–52 %, depending on the
//! cache window). We cannot ship the authors' files, so this crate
//! synthesizes objects with the same redundancy structure:
//!
//! * [`ObjectKind::Ebook`] — Zipf-weighted natural-language-like text
//!   with sparse repeated phrases (headers, quotes) spaced far apart.
//! * [`ObjectKind::Video`] — incompressible pseudo-random bytes with a
//!   tiny periodic container header.
//! * [`ObjectKind::WebPage`] — templated HTML: navigation blocks, CSS
//!   boilerplate, and list items stamped from shared templates at short
//!   range.
//!
//! For the delay/byte-savings experiments (Figures 10–13) the paper uses
//! two files distinguished by their *dependency fan-out*: File 1 averages
//! 4 distinct-packet dependencies per encoded packet, File 2 averages 7.
//! [`StreamSpec`] builds objects with an explicit per-packet redundancy
//! layout (how many snippets, copied from how far back), so that fan-out
//! is a controlled parameter rather than an accident.
//!
//! For multi-flow capacity scenarios, [`flash_crowd`] plans open-loop
//! workloads: a Zipf-popularity catalog ([`ZipfSampler`]) fetched by
//! flows arriving as a Poisson process ([`poisson_arrivals`]).
//!
//! All generation is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flows;
mod generators;
mod stream;

pub use flows::{flash_crowd, poisson_arrivals, FlowSpec, ZipfSampler};
pub use generators::{generate, ObjectKind};
pub use stream::{FileSpec, StreamSpec};
