//! Objects with controlled per-packet redundancy structure (the paper's
//! File 1 / File 2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Layout of redundancy within an object, expressed per MSS-sized packet.
///
/// The object is generated packet-by-packet. A *redundant* packet is a
/// mixture of fresh bytes and `fan` snippets copied verbatim from
/// packets up to `max_distance` packets back; the DRE encoder will later
/// rediscover each snippet as a match to a distinct earlier packet, so
/// `fan` directly controls the paper's "average number of dependencies
/// to distinct IP packets" (File 1 ≈ 4, File 2 ≈ 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Packet granularity (the TCP MSS in the experiments).
    pub packet_size: usize,
    /// Fraction of packets that carry copied snippets at all.
    pub redundant_packet_fraction: f64,
    /// Fraction of a redundant packet's bytes that are copied.
    pub copied_fraction: f64,
    /// Number of snippets (⇒ distinct source packets) per redundant packet.
    pub fan: usize,
    /// How far back (in packets) snippet sources may be drawn from.
    pub max_distance: usize,
}

impl StreamSpec {
    /// Build an object of exactly `size` bytes, deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero packet size or fan, or
    /// fractions outside `[0, 1]`).
    #[must_use]
    pub fn build(&self, size: usize, seed: u64) -> Vec<u8> {
        assert!(self.packet_size > 0, "packet_size must be positive");
        assert!(self.fan > 0, "fan must be positive");
        assert!((0.0..=1.0).contains(&self.redundant_packet_fraction));
        assert!((0.0..=1.0).contains(&self.copied_fraction));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x57EA_4B10);
        let mut packets: Vec<Vec<u8>> = Vec::new();
        let mut total = 0usize;
        while total < size {
            let pkt = self.build_packet(&packets, &mut rng);
            total += pkt.len();
            packets.push(pkt);
        }
        let mut out: Vec<u8> = packets.concat();
        out.truncate(size);
        out
    }

    fn build_packet(&self, history: &[Vec<u8>], rng: &mut StdRng) -> Vec<u8> {
        let n = self.packet_size;
        let make_fresh = |rng: &mut StdRng, len: usize| -> Vec<u8> {
            let mut buf = vec![0u8; len];
            rng.fill(&mut buf[..]);
            buf
        };
        // The first packets (no history) and the non-redundant share are
        // fully fresh.
        if history.is_empty() || !rng.gen_bool(self.redundant_packet_fraction) {
            return make_fresh(rng, n);
        }
        // Pick `fan` distinct sources from the reachable history.
        let lo = history.len().saturating_sub(self.max_distance);
        let reachable = lo..history.len();
        let mut sources: Vec<usize> = Vec::new();
        for _ in 0..(self.fan * 3) {
            let s = rng.gen_range(reachable.clone());
            if !sources.contains(&s) {
                sources.push(s);
                if sources.len() == self.fan {
                    break;
                }
            }
        }
        let copied_total = ((n as f64) * self.copied_fraction) as usize;
        let snippet_len = (copied_total / sources.len().max(1)).max(24);
        let mut out = Vec::with_capacity(n + snippet_len);
        let fresh_gap =
            (n.saturating_sub(snippet_len * sources.len())) / (sources.len() + 1).max(1);
        for &src in &sources {
            out.extend_from_slice(&make_fresh(rng, fresh_gap.max(4)));
            let packet = &history[src];
            let max_start = packet.len().saturating_sub(snippet_len);
            let start = if max_start == 0 {
                0
            } else {
                rng.gen_range(0..max_start)
            };
            let end = (start + snippet_len).min(packet.len());
            out.extend_from_slice(&packet[start..end]);
        }
        out.resize(n, 0);
        // Replace the zero padding with fresh bytes.
        let tail_start = out.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
        let tail = make_fresh(rng, n - tail_start);
        out.truncate(tail_start);
        out.extend_from_slice(&tail);
        out
    }
}

/// Named workload presets used throughout the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileSpec {
    /// The paper's File 1: ~45 % copied bytes, fan-out ≈ 4.
    File1,
    /// The paper's File 2: same redundancy budget, fan-out ≈ 7 — more
    /// fragile under loss because each packet depends on more packets.
    File2,
}

impl FileSpec {
    /// The stream specification for this file.
    #[must_use]
    pub fn spec(self) -> StreamSpec {
        match self {
            // Roughly half the packets are fully fresh: fresh packets
            // break dependency chains (bounding the undecodable cascade
            // after a loss) and keep duplicate ACKs flowing so TCP can
            // recover without timeouts — both properties the paper's
            // real files exhibit. The redundant half is ~90 % copied, so
            // overall ~45 % of bytes are redundant, matching the paper's
            // 0 %-loss savings.
            FileSpec::File1 => StreamSpec {
                packet_size: 1460,
                redundant_packet_fraction: 0.50,
                copied_fraction: 0.90,
                fan: 4,
                max_distance: 5,
            },
            FileSpec::File2 => StreamSpec {
                packet_size: 1460,
                redundant_packet_fraction: 0.50,
                copied_fraction: 0.90,
                fan: 7,
                max_distance: 8,
            },
        }
    }

    /// Stable label used in tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FileSpec::File1 => "File 1",
            FileSpec::File2 => "File 2",
        }
    }

    /// Build this file at the paper's e-book size (587,567 bytes) unless
    /// another size is given.
    #[must_use]
    pub fn build(self, size: usize, seed: u64) -> Vec<u8> {
        self.spec().build(size, seed)
    }
}

impl core::fmt::Display for FileSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_size_and_determinism() {
        let spec = FileSpec::File1.spec();
        let a = spec.build(100_000, 3);
        let b = spec.build(100_000, 3);
        assert_eq!(a.len(), 100_000);
        assert_eq!(a, b);
        assert_ne!(a, spec.build(100_000, 4));
    }

    /// Count, per packet, how many *distinct earlier packets* share a
    /// 32-byte window with it — a direct proxy for DRE dependencies.
    fn mean_fan(data: &[u8], packet_size: usize) -> f64 {
        let packets: Vec<&[u8]> = data.chunks(packet_size).collect();
        // Map window -> most recent packet containing it (DRE's
        // entry-replacement semantics).
        let mut owner: HashMap<&[u8], usize> = HashMap::new();
        let mut fans = Vec::new();
        for (pi, pkt) in packets.iter().enumerate() {
            let mut sources: Vec<usize> = Vec::new();
            // Slide at byte granularity: copied snippets land at
            // arbitrary alignment, so coarser strides miss them.
            for w in pkt.windows(32) {
                if let Some(&o) = owner.get(w) {
                    if o != pi && !sources.contains(&o) {
                        sources.push(o);
                    }
                }
            }
            for w in pkt.windows(32) {
                owner.insert(w, pi);
            }
            if !sources.is_empty() {
                fans.push(sources.len());
            }
        }
        fans.iter().sum::<usize>() as f64 / fans.len().max(1) as f64
    }

    #[test]
    fn file1_and_file2_fanout_differ_as_specified() {
        // The byte-window proxy over-counts relative to the real DRE
        // encoder (re-copied regions resolve to several "most recent"
        // owners), so the exact ≈4 / ≈7 calibration is asserted against
        // the real encoder in the experiments crate; here we check the
        // structural ordering the presets exist for.
        let f1 = FileSpec::File1.build(400_000, 11);
        let f2 = FileSpec::File2.build(400_000, 11);
        let fan1 = mean_fan(&f1, 1460);
        let fan2 = mean_fan(&f2, 1460);
        assert!(fan1 > 1.0, "File 1 must be cross-packet redundant: {fan1}");
        assert!(
            fan2 > fan1 * 1.2,
            "File 2 ({fan2}) must fan out more than File 1 ({fan1})"
        );
    }

    #[test]
    fn zero_redundancy_stream_is_fresh() {
        let spec = StreamSpec {
            packet_size: 1000,
            redundant_packet_fraction: 0.0,
            copied_fraction: 0.5,
            fan: 3,
            max_distance: 10,
        };
        let data = spec.build(50_000, 1);
        // No repeated 32-byte windows expected in pure random data.
        let mut seen = std::collections::HashSet::new();
        let mut i = 0;
        let mut repeats = 0;
        while i + 32 <= data.len() {
            if !seen.insert(&data[i..i + 32]) {
                repeats += 1;
            }
            i += 32;
        }
        assert_eq!(repeats, 0);
    }

    #[test]
    fn copied_fraction_controls_redundancy_volume() {
        let base = StreamSpec {
            packet_size: 1460,
            redundant_packet_fraction: 1.0,
            copied_fraction: 0.3,
            fan: 2,
            max_distance: 8,
        };
        let heavy = StreamSpec {
            copied_fraction: 0.7,
            ..base.clone()
        };
        let repeat_volume = |data: &[u8]| {
            let mut seen = std::collections::HashSet::new();
            let mut repeats = 0usize;
            let mut i = 0;
            while i + 32 <= data.len() {
                if !seen.insert(&data[i..i + 32]) {
                    repeats += 1;
                }
                i += 8;
            }
            repeats
        };
        let light_r = repeat_volume(&base.build(300_000, 5));
        let heavy_r = repeat_volume(&heavy.build(300_000, 5));
        assert!(
            heavy_r as f64 > light_r as f64 * 1.5,
            "copied_fraction 0.7 ({heavy_r}) should repeat far more than 0.3 ({light_r})"
        );
    }

    #[test]
    #[should_panic(expected = "fan must be positive")]
    fn degenerate_spec_rejected() {
        let spec = StreamSpec {
            packet_size: 100,
            redundant_packet_fraction: 0.5,
            copied_fraction: 0.5,
            fan: 0,
            max_distance: 5,
        };
        let _ = spec.build(1000, 1);
    }
}
