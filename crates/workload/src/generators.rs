//! Object generators mimicking the paper's web-object classes.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The classes of web object measured in the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// Plain-text e-book: very low windowed redundancy (0.3–1 %),
    /// repeats spaced far apart.
    Ebook,
    /// Compressed video: essentially incompressible (≈ 0.01 %).
    Video,
    /// Templated HTML page: high short-range redundancy (19–52 %).
    WebPage,
}

impl ObjectKind {
    /// All kinds, in Table I order.
    pub const ALL: [ObjectKind; 3] = [ObjectKind::Ebook, ObjectKind::Video, ObjectKind::WebPage];

    /// Stable label used in tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ObjectKind::Ebook => "ebook",
            ObjectKind::Video => "video",
            ObjectKind::WebPage => "web page",
        }
    }
}

impl core::fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Generate an object of exactly `size` bytes, deterministically from
/// `seed`.
#[must_use]
pub fn generate(kind: ObjectKind, size: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB17E_CACE);
    let mut out = match kind {
        ObjectKind::Ebook => ebook(size, &mut rng),
        ObjectKind::Video => video(size, &mut rng),
        ObjectKind::WebPage => webpage(size, &mut rng),
    };
    out.truncate(size);
    out
}

/// Natural-language-like text from a Zipf-weighted vocabulary, with a
/// small pool of long phrases (chapter epigraphs) re-quoted at long
/// range — the source of an e-book's sub-1 % DRE redundancy.
fn ebook(size: usize, rng: &mut StdRng) -> Vec<u8> {
    // Synthesize a vocabulary: word lengths 2..12, letters weighted
    // roughly like English. The vocabulary is large and only mildly
    // skewed: with a heavy Zipf head, two-word sequences (a 16-byte DRE
    // window spans about two words) repeat often enough to push windowed
    // redundancy far above the 0.3–1 % the paper measures on real
    // e-books; a flat-ish 20k-word vocabulary keeps exact ≥15-byte
    // repeats rare, leaving the long-range epigraph quotes as the main
    // redundancy source.
    const LETTERS: &[u8] = b"etaoinshrdlucmfwypvbgkjqxz";
    let vocab: Vec<Vec<u8>> = (0..20_000)
        .map(|_| {
            let len = rng.gen_range(2..=12);
            (0..len)
                .map(|_| {
                    let idx = (rng.gen_range(0.0f64..1.0).powi(2) * LETTERS.len() as f64) as usize;
                    LETTERS[idx.min(LETTERS.len() - 1)]
                })
                .collect()
        })
        .collect();
    // Mildly skewed rank weights (much flatter than Zipf s = 1).
    let weights: Vec<f64> = (1..=vocab.len())
        .map(|r| 1.0 / ((r + 10) as f64).sqrt())
        .collect();
    let dist = WeightedIndex::new(&weights).expect("non-empty weights");

    // A small pool of long phrases (epigraphs, recurring headers),
    // re-quoted every ~20 KB: the sparse, long-range repeats that give a
    // real e-book its 0.3-1 % windowed redundancy.
    let epigraphs: Vec<Vec<u8>> = (0..4)
        .map(|_| {
            let mut p = Vec::new();
            for _ in 0..rng.gen_range(25..40) {
                p.extend_from_slice(&vocab[dist.sample(rng)]);
                p.push(b' ');
            }
            p
        })
        .collect();

    let mut out = Vec::with_capacity(size + 64);
    let mut words_in_line = 0;
    let mut words_in_paragraph = 0;
    let mut since_epigraph = 0usize;
    while out.len() < size {
        // Roughly every 20 KB, quote one of the epigraphs.
        if since_epigraph > 15_000 && rng.gen_bool(0.05) {
            out.extend_from_slice(b"\n\n  \"");
            out.extend_from_slice(&epigraphs[rng.gen_range(0..epigraphs.len())]);
            out.extend_from_slice(b"\"\n\n");
            since_epigraph = 0;
            continue;
        }
        let word = &vocab[dist.sample(rng)];
        since_epigraph += word.len() + 1;
        out.extend_from_slice(word);
        words_in_line += 1;
        words_in_paragraph += 1;
        if words_in_paragraph > rng.gen_range(80..200) {
            out.extend_from_slice(b".\n\n");
            words_in_paragraph = 0;
            words_in_line = 0;
        } else if words_in_line > 11 {
            out.push(b'\n');
            words_in_line = 0;
        } else {
            out.push(b' ');
        }
    }
    out
}

/// Incompressible pseudo-random bytes with a 16-byte container header
/// every 64 KiB (the only repeated content, ≈ 0.02 %).
fn video(size: usize, rng: &mut StdRng) -> Vec<u8> {
    const CHUNK: usize = 64 * 1024;
    const HEADER: &[u8; 16] = b"\x00\x00\x01\xBAmoov\x00\x00\x01\xBBdat0";
    let mut out = Vec::with_capacity(size + CHUNK);
    while out.len() < size {
        out.extend_from_slice(HEADER);
        let body = CHUNK - HEADER.len();
        let mut buf = vec![0u8; body];
        rng.fill(&mut buf[..]);
        out.extend_from_slice(&buf);
    }
    out
}

/// Templated HTML: repeated navigation blocks, CSS boilerplate, and
/// list items stamped from a few templates with small per-item edits —
/// the short-range redundancy that makes web pages compress 19–52 %.
fn webpage(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let nav: Vec<u8> = {
        let mut n = Vec::new();
        n.extend_from_slice(b"<nav class=\"site-navigation\"><ul class=\"menu-items\">");
        for item in [
            "home",
            "products",
            "solutions",
            "support",
            "company",
            "contact",
        ] {
            n.extend_from_slice(
                format!(
                    "<li class=\"menu-item menu-item-type-post_type\"><a href=\"/{item}/index.html\" \
                     class=\"nav-link\">{item}</a></li>"
                )
                .as_bytes(),
            );
        }
        n.extend_from_slice(b"</ul></nav>");
        n
    };
    let css: Vec<u8> = (b"<style>.card{display:flex;flex-direction:column;border:1px solid #ddd;\
        border-radius:8px;padding:16px;margin:8px;box-shadow:0 1px 3px rgba(0,0,0,0.12)}\
        .card-title{font-size:18px;font-weight:600;color:#222;margin-bottom:8px}\
        .card-body{font-size:14px;line-height:1.5;color:#555}</style>")
        .to_vec();

    let mut out = Vec::with_capacity(size + 1024);
    out.extend_from_slice(b"<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">");
    out.extend_from_slice(&css);
    out.extend_from_slice(b"</head><body>");
    out.extend_from_slice(&nav);
    let mut item_id = 0u32;
    while out.len() < size {
        // Re-stamp the nav/css periodically (headers, footers, sidebars).
        if rng.gen_bool(0.02) {
            out.extend_from_slice(&nav);
        }
        if rng.gen_bool(0.01) {
            out.extend_from_slice(&css);
        }
        // A templated card with a small unique core.
        item_id += 1;
        // A substantial unique core per card keeps whole-page redundancy
        // in the paper's 19-52 % band rather than approaching 100 %.
        let unique: String = (0..rng.gen_range(150..420))
            .map(|_| {
                let c = rng.gen_range(0..28u8);
                if c < 26 {
                    (b'a' + c) as char
                } else if c == 26 {
                    ' '
                } else {
                    '-'
                }
            })
            .collect();
        out.extend_from_slice(
            format!(
                "<div class=\"card\" data-item-id=\"{item_id}\"><h2 class=\"card-title\">Item \
                 {item_id}</h2><div class=\"card-body\"><p>{unique}</p><span class=\"price-tag \
                 currency-usd\">$ {}.99</span><button class=\"add-to-cart-button btn \
                 btn-primary\" aria-label=\"add to cart\">Add to cart</button></div></div>",
                rng.gen_range(1..500)
            )
            .as_bytes(),
        );
    }
    out.extend_from_slice(b"</body></html>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Fraction of 16-byte windows (sampled every 16 bytes) that repeat
    /// an earlier window — a crude stand-in for DRE redundancy, good
    /// enough to order the object kinds.
    fn window_repeat_fraction(data: &[u8]) -> f64 {
        let mut seen: HashMap<&[u8], u32> = HashMap::new();
        let mut repeats = 0usize;
        let mut total = 0usize;
        let mut i = 0;
        while i + 16 <= data.len() {
            let w = &data[i..i + 16];
            total += 1;
            let c = seen.entry(w).or_insert(0);
            if *c > 0 {
                repeats += 1;
            }
            *c += 1;
            i += 16;
        }
        repeats as f64 / total.max(1) as f64
    }

    #[test]
    fn sizes_are_exact() {
        for kind in ObjectKind::ALL {
            for size in [1_000usize, 40_000, 587_567] {
                assert_eq!(generate(kind, size, 1).len(), size, "{kind} {size}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for kind in ObjectKind::ALL {
            assert_eq!(generate(kind, 50_000, 7), generate(kind, 50_000, 7));
            assert_ne!(generate(kind, 50_000, 7), generate(kind, 50_000, 8));
        }
    }

    #[test]
    fn redundancy_ordering_matches_table_i() {
        let ebook = window_repeat_fraction(&generate(ObjectKind::Ebook, 300_000, 3));
        let video = window_repeat_fraction(&generate(ObjectKind::Video, 300_000, 3));
        let web = window_repeat_fraction(&generate(ObjectKind::WebPage, 300_000, 3));
        assert!(video < 0.005, "video should be incompressible: {video}");
        assert!(ebook < 0.02, "ebook redundancy should be small: {ebook}");
        assert!(web > 0.15, "web pages should be highly redundant: {web}");
        // This 16-byte-stride proxy undersamples the ebook's sparse
        // long-range repeats (it can read 0 here); the authoritative
        // ordering check, using the real encoder, is the Table I test in
        // the experiments crate.
        assert!(
            ebook < web && video < web,
            "ordering: {video} {ebook} {web}"
        );
    }

    #[test]
    fn ebook_looks_like_text() {
        let data = generate(ObjectKind::Ebook, 10_000, 1);
        let printable = data
            .iter()
            .filter(|&&b| b == b' ' || b == b'\n' || b.is_ascii_graphic())
            .count();
        assert!(printable as f64 / data.len() as f64 > 0.99);
    }

    #[test]
    fn webpage_contains_html_structure() {
        let data = generate(ObjectKind::WebPage, 20_000, 1);
        let text = String::from_utf8_lossy(&data);
        assert!(text.starts_with("<!DOCTYPE html>"));
        assert!(text.contains("card-title"));
        assert!(text.matches("add-to-cart-button").count() > 3);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ObjectKind::Ebook.to_string(), "ebook");
        assert_eq!(ObjectKind::Video.label(), "video");
        assert_eq!(ObjectKind::WebPage.label(), "web page");
    }
}
