//! Property test: the timing wheel (`QueueKind::Wheel`) is
//! byte-identical to the `BinaryHeap` oracle (`QueueKind::Heap`) on
//! both engines — the legacy serial loop and the conservative PDES
//! engine at 1–8 workers.
//!
//! Each proptest case draws an adversarial schedule aimed at the
//! wheel's corner cases:
//!
//! * **tie bursts** — several packets forwarded back-to-back at one
//!   timestamp, and step gaps drawn from a small set so bursts from
//!   different origins collide at the same instant;
//! * **zero-delay self-events** — timer chains with zero delay, created
//!   *while* their timestamp is being drained;
//! * **far-future times** — inert timers up to `2^42` µs out, crossing
//!   the wheel horizon into the overflow heap and back;
//! * **mid-run route changes** — pre-scheduled flips landing between
//!   in-flight deliveries, plus one scheduled *between* run segments
//!   (after a `run_until` peek has advanced the wheel frontier — the
//!   backlog path).
//!
//! The digest covers everything observable: sink arrivals, link stats,
//! the final clock, event counts, no-route drops, the full trace log,
//! and the telemetry export (wall-clock spans stripped).

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

use bytecache_netsim::channel::{ChannelConfig, LossModel};
use bytecache_netsim::time::{SimDuration, SimTime};
use bytecache_netsim::{
    Context, ExecMode, FnTrace, LinkConfig, Node, QueueKind, Simulator, TraceEvent,
};
use bytecache_packet::{Packet, TcpFlags};
use bytecache_telemetry::Recorder;
use proptest::prelude::*;

const DST: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);

/// Token namespaces for `ScriptNode` timers.
const TOK_STEP: u64 = 0; // + step index
const TOK_CHAIN: u64 = 1 << 32; // + remaining chain length
const TOK_FAR: u64 = 1 << 33;

#[derive(Debug, Clone)]
enum Op {
    /// Forward `n` packets back-to-back: a same-timestamp tie burst
    /// from one origin.
    Burst(u8),
    /// `n` zero-delay self-timers, then one packet — events created at
    /// the timestamp currently being drained.
    ZeroChain(u8),
    /// An inert timer `1 << (30 + s)` µs out; `s` up to 12 pushes past
    /// the wheel horizon into the overflow heap.
    Far(u8),
}

struct ScriptNode {
    steps: Vec<(u64, Op)>,
}

impl ScriptNode {
    fn fire(&self, step: usize, ctx: &mut Context<'_>) {
        match self.steps[step].1 {
            Op::Burst(n) => {
                for _ in 0..n {
                    ctx.forward(pkt());
                }
            }
            Op::ZeroChain(n) => ctx.set_timer(SimDuration::ZERO, TOK_CHAIN + n as u64),
            Op::Far(s) => ctx.set_timer(
                SimDuration::from_micros(1u64 << (30 + s.min(12) as u32)),
                TOK_FAR,
            ),
        }
        if step + 1 < self.steps.len() {
            ctx.set_timer(
                SimDuration::from_micros(self.steps[step + 1].0),
                TOK_STEP + (step + 1) as u64,
            );
        }
    }
}

impl Node for ScriptNode {
    fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if !self.steps.is_empty() {
            ctx.set_timer(SimDuration::from_micros(self.steps[0].0), TOK_STEP);
        }
    }
    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if token >= TOK_FAR {
            return;
        }
        if token >= TOK_CHAIN {
            let left = token - TOK_CHAIN;
            if left > 0 {
                ctx.set_timer(SimDuration::ZERO, TOK_CHAIN + left - 1);
            } else {
                ctx.forward(pkt());
            }
            return;
        }
        self.fire(token as usize, ctx);
    }
}

/// Forwards everything along its routing table.
struct Relay;
impl Node for Relay {
    fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
        ctx.forward(p);
    }
}

#[derive(Default)]
struct Sink {
    arrivals: Vec<(SimTime, usize)>,
}
impl Node for Sink {
    fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
        self.arrivals.push((ctx.now(), p.payload.len()));
    }
}

fn pkt() -> Packet {
    Packet::builder()
        .src(Ipv4Addr::new(10, 9, 0, 1), 1)
        .dst(DST, 2)
        .flags(TcpFlags::ACK)
        .payload(vec![0x5A; 40])
        .build()
}

#[derive(Debug, Clone)]
struct Plan {
    scripts: Vec<Vec<(u64, Op)>>,
    loss_milli: u32,
    dup_milli: u32,
    reorder_milli: u32,
    rate: Option<u64>,
    flip1_us: u64,
    flip2_delta_us: u64,
    cut_us: u64,
    seed: u64,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..=3).prop_map(Op::Burst),
        (1u8..=3).prop_map(Op::ZeroChain),
        (1u8..=3).prop_map(Op::Burst),
        (1u8..=3).prop_map(Op::ZeroChain),
        (0u8..=12).prop_map(Op::Far),
    ]
}

/// Gaps drawn from a small set so steps of *different* nodes land on
/// the same timestamp (cross-origin ties), including zero gaps.
const GAPS: [u64; 7] = [0, 500, 500, 1_000, 1_000, 2_000, 7_500];

fn script_strategy() -> impl Strategy<Value = Vec<(u64, Op)>> {
    prop::collection::vec(
        ((0usize..GAPS.len()).prop_map(|i| GAPS[i]), op_strategy()),
        1..8,
    )
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (
        prop::collection::vec(script_strategy(), 1..4),
        0u32..200,
        0u32..80,
        0u32..150,
        (any::<bool>(), 200_000u64..2_000_000).prop_map(|(cap, r)| cap.then_some(r)),
        1_000u64..40_000,
        1_000u64..20_000,
        500u64..50_000,
        any::<u64>(),
    )
        .prop_map(
            |(
                scripts,
                loss_milli,
                dup_milli,
                reorder_milli,
                rate,
                flip1_us,
                flip2_delta_us,
                cut_us,
                seed,
            )| Plan {
                scripts,
                loss_milli,
                dup_milli,
                reorder_milli,
                rate,
                flip1_us,
                flip2_delta_us,
                cut_us,
                seed,
            },
        )
}

fn fmt_trace(ev: &TraceEvent<'_>) -> String {
    match ev {
        TraceEvent::Transmit { at, from, to, .. } => {
            format!("T {} {} {}", at.as_micros(), from.index(), to.index())
        }
        TraceEvent::Lost { at, from, to, .. } => {
            format!("L {} {} {}", at.as_micros(), from.index(), to.index())
        }
        TraceEvent::Corrupted { at, from, to, .. } => {
            format!("C {} {} {}", at.as_micros(), from.index(), to.index())
        }
        TraceEvent::Deliver { at, to, .. } => format!("D {} {}", at.as_micros(), to.index()),
        TraceEvent::NoRoute { at, from, .. } => format!("N {} {}", at.as_micros(), from.index()),
    }
}

type Digest = (
    Vec<Vec<(SimTime, usize)>>, // sink arrivals
    Vec<String>,                // link stats
    SimTime,                    // final clock
    u64,                        // events processed
    u64,                        // no-route drops
    Vec<String>,                // trace log
    Recorder,                   // telemetry (wall-clock stripped)
);

fn run_case(plan: &Plan, mode: ExecMode, kind: QueueKind) -> Digest {
    let mut sim = Simulator::new(plan.seed);
    sim.set_exec_mode(mode);
    sim.set_queue_kind(kind);
    sim.set_telemetry_enabled(true);
    let trace_log: Rc<RefCell<Vec<String>>> = Rc::default();
    {
        let log = Rc::clone(&trace_log);
        sim.set_trace(Box::new(FnTrace(move |ev: &TraceEvent<'_>| {
            log.borrow_mut().push(fmt_trace(ev));
        })));
    }

    // All scripted senders route through one shared relay, which flips
    // between two sinks mid-run.
    let hub = sim.add_node(Relay);
    let sink_a = sim.add_node(Sink::default());
    let sink_b = sim.add_node(Sink::default());
    let mut links = Vec::new();
    for steps in &plan.scripts {
        let src = sim.add_node(ScriptNode {
            steps: steps.clone(),
        });
        links.push(sim.add_link(
            src,
            hub,
            LinkConfig {
                rate_bytes_per_sec: plan.rate,
                propagation: SimDuration::from_millis(1),
                channel: ChannelConfig {
                    loss: LossModel::Bernoulli {
                        rate: plan.loss_milli as f64 / 1_000.0,
                    },
                    duplicate_rate: plan.dup_milli as f64 / 1_000.0,
                    reorder_rate: plan.reorder_milli as f64 / 1_000.0,
                    reorder_window: SimDuration::from_millis(2),
                    ..ChannelConfig::clean()
                },
            },
        ));
        sim.add_route(src, DST, hub);
    }
    links.push(sim.add_link(hub, sink_a, LinkConfig::default()));
    links.push(sim.add_link(hub, sink_b, LinkConfig::default()));
    sim.add_route(hub, DST, sink_a);
    sim.schedule_route_change(SimTime::from_micros(plan.flip1_us), hub, DST, Some(sink_b));
    sim.schedule_route_change(
        SimTime::from_micros(plan.flip1_us + plan.flip2_delta_us),
        hub,
        DST,
        Some(sink_a),
    );

    // Two segments with a route change scheduled in between — by then a
    // peek has already advanced the wheel frontier past `cut`, so this
    // flip exercises the backlog path.
    sim.run_until(SimTime::from_micros(plan.cut_us));
    sim.schedule_route_change(
        SimTime::from_micros(plan.cut_us + 750),
        hub,
        DST,
        Some(sink_b),
    );
    sim.run_until_idle();

    let arrivals = [sink_a, sink_b]
        .iter()
        .map(|&s| sim.node::<Sink>(s).unwrap().arrivals.clone())
        .collect();
    let stats = links
        .iter()
        .map(|&l| format!("{:?}", sim.link_stats(l)))
        .collect();
    let mut tele = sim.telemetry_snapshot();
    tele.strip_wall_clock();
    let log = std::mem::take(&mut *trace_log.borrow_mut());
    (
        arrivals,
        stats,
        sim.now(),
        sim.events_processed(),
        sim.no_route_drops(),
        log,
        tele,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Legacy serial engine: the wheel reproduces the historical
    /// global-insertion-order tie-break bit for bit.
    #[test]
    fn wheel_matches_heap_on_legacy_serial(plan in plan_strategy()) {
        let heap = run_case(&plan, ExecMode::Serial, QueueKind::Heap);
        let wheel = run_case(&plan, ExecMode::Serial, QueueKind::Wheel);
        prop_assert_eq!(heap, wheel);
    }

    /// Deterministic engines: heap and wheel agree with each other and
    /// across the serial oracle and PDES at 1–8 workers.
    #[test]
    fn wheel_matches_heap_across_pdes_engines(plan in plan_strategy()) {
        let oracle = run_case(&plan, ExecMode::SerialDet, QueueKind::Heap);
        let wheel = run_case(&plan, ExecMode::SerialDet, QueueKind::Wheel);
        prop_assert_eq!(&wheel, &oracle, "SerialDet wheel diverged from heap");
        for workers in [1usize, 2, 3, 8] {
            let got = run_case(&plan, ExecMode::Parallel { workers }, QueueKind::Wheel);
            prop_assert_eq!(&got, &oracle, "wheel PDES diverged at {} workers", workers);
        }
        for workers in [2usize, 8] {
            let got = run_case(&plan, ExecMode::Parallel { workers }, QueueKind::Heap);
            prop_assert_eq!(&got, &oracle, "heap PDES diverged at {} workers", workers);
        }
    }
}

/// A fixed dense scenario kept out of proptest so it always runs, even
/// with `PROPTEST_CASES=0`: every adversarial ingredient at once.
#[test]
fn dense_fixed_scenario_agrees_everywhere() {
    let plan = Plan {
        scripts: vec![
            vec![
                (0, Op::Burst(3)),
                (0, Op::ZeroChain(3)),
                (500, Op::Burst(2)),
                (1_000, Op::Far(12)),
                (1_000, Op::ZeroChain(1)),
            ],
            vec![
                (0, Op::ZeroChain(2)),
                (500, Op::Burst(3)),
                (500, Op::Far(0)),
                (2_000, Op::Burst(1)),
            ],
            vec![(1_000, Op::Burst(2)), (1_000, Op::ZeroChain(3))],
        ],
        loss_milli: 120,
        dup_milli: 40,
        reorder_milli: 80,
        rate: Some(400_000),
        flip1_us: 2_000,
        flip2_delta_us: 1_500,
        cut_us: 2_500,
        seed: 0xBC8,
    };
    let oracle = run_case(&plan, ExecMode::SerialDet, QueueKind::Heap);
    assert!(
        oracle.0.iter().any(|a| !a.is_empty()),
        "scenario delivers packets"
    );
    assert_eq!(
        run_case(&plan, ExecMode::SerialDet, QueueKind::Wheel),
        oracle
    );
    for workers in [1usize, 2, 3, 4, 8] {
        assert_eq!(
            run_case(&plan, ExecMode::Parallel { workers }, QueueKind::Wheel),
            oracle,
            "diverged at {workers} workers"
        );
    }
    let serial_heap = run_case(&plan, ExecMode::Serial, QueueKind::Heap);
    let serial_wheel = run_case(&plan, ExecMode::Serial, QueueKind::Wheel);
    assert_eq!(serial_heap, serial_wheel);
}
