//! Property test: the conservative PDES engine is byte-identical to
//! the serial deterministic oracle on randomized topologies.
//!
//! Each case draws a random topology (fan of multi-hop chains, some
//! through a shared relay), random channel impairments (Bernoulli or
//! Gilbert–Elliott loss, corruption, reordering, duplication), random
//! link rates and propagation delays, random mid-run route flips, and
//! random partitions — then asserts that `ExecMode::Parallel` at
//! worker counts 1, 2, 3, 4 and 8 reproduces the `ExecMode::SerialDet`
//! run *exactly*: receiver arrivals, every link's traffic counters,
//! the final clock, the total event count, the no-route drop count,
//! the full trace log, and the telemetry export.

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

use bytecache_netsim::channel::{ChannelConfig, LossModel};
use bytecache_netsim::time::{SimDuration, SimTime};
use bytecache_netsim::{
    Context, ExecMode, FnTrace, LinkConfig, LinkId, Node, NodeId, Simulator, TraceEvent,
};
use bytecache_packet::{Packet, TcpFlags};
use bytecache_telemetry::Recorder;

/// SplitMix64 — a tiny deterministic generator so the test's case
/// construction is independent of any RNG crate.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform in `[lo, hi]`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }

    /// Uniform float in `[0, hi)`.
    fn f64(&mut self, hi: f64) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 * hi
    }

    fn chance(&mut self, p: f64) -> bool {
        self.f64(1.0) < p
    }
}

fn ip(chain: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 1, chain, 2)
}

fn pkt(dst: Ipv4Addr, len: usize) -> Packet {
    Packet::builder()
        .src(Ipv4Addr::new(10, 1, 255, 1), 1)
        .dst(dst, 2)
        .flags(TcpFlags::ACK)
        .payload(vec![0x5A; len])
        .build()
}

/// Emits `count` packets spaced by `gap`.
struct Burst {
    dst: Ipv4Addr,
    count: usize,
    len: usize,
    gap: SimDuration,
}
impl Node for Burst {
    fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.gap, 0);
    }
    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        ctx.forward(pkt(self.dst, self.len));
        if (token as usize) + 1 < self.count {
            ctx.set_timer(self.gap, token + 1);
        }
    }
}

/// Forwards everything along its routing table.
struct Relay;
impl Node for Relay {
    fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
        ctx.forward(p);
    }
}

#[derive(Default)]
struct Sink {
    arrivals: Vec<(SimTime, usize)>,
}
impl Node for Sink {
    fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
        self.arrivals.push((ctx.now(), p.payload.len()));
    }
}

fn random_channel(g: &mut Mix) -> ChannelConfig {
    let loss = match g.range(0, 2) {
        0 => LossModel::None,
        1 => LossModel::Bernoulli { rate: g.f64(0.25) },
        _ => LossModel::GilbertElliott {
            good_loss: g.f64(0.02),
            bad_loss: 0.3 + g.f64(0.5),
            p_good_to_bad: g.f64(0.1),
            p_bad_to_good: 0.1 + g.f64(0.4),
        },
    };
    ChannelConfig {
        loss,
        corruption_rate: if g.chance(0.3) { g.f64(0.05) } else { 0.0 },
        reorder_rate: if g.chance(0.5) { g.f64(0.15) } else { 0.0 },
        reorder_window: SimDuration::from_millis(g.range(1, 6)),
        duplicate_rate: if g.chance(0.4) { g.f64(0.08) } else { 0.0 },
        reorder_burst_len: g.range(1, 3) as u32,
    }
}

fn random_link(g: &mut Mix) -> LinkConfig {
    LinkConfig {
        rate_bytes_per_sec: if g.chance(0.7) {
            Some(g.range(200_000, 2_000_000))
        } else {
            None
        },
        // Propagation >= 1 ms keeps the lookahead nonzero, so the test
        // exercises the real window protocol, not the serial fallback.
        propagation: SimDuration::from_millis(g.range(1, 8)),
        channel: random_channel(g),
    }
}

/// Compact, lossless-enough rendering of a trace event for equality
/// comparison (full `Debug` of every payload would dominate runtime).
fn fmt_trace(ev: &TraceEvent<'_>) -> String {
    match ev {
        TraceEvent::Transmit {
            at,
            from,
            to,
            packet,
        } => {
            format!(
                "T {} {} {} {}",
                at.as_micros(),
                from.index(),
                to.index(),
                packet.payload.len()
            )
        }
        TraceEvent::Lost {
            at,
            from,
            to,
            packet,
        } => {
            format!(
                "L {} {} {} {}",
                at.as_micros(),
                from.index(),
                to.index(),
                packet.payload.len()
            )
        }
        TraceEvent::Corrupted {
            at,
            from,
            to,
            packet,
        } => {
            format!(
                "C {} {} {} {}",
                at.as_micros(),
                from.index(),
                to.index(),
                packet.payload.len()
            )
        }
        TraceEvent::Deliver { at, to, packet } => {
            format!(
                "D {} {} {}",
                at.as_micros(),
                to.index(),
                packet.payload.len()
            )
        }
        TraceEvent::NoRoute { at, from, packet } => {
            format!(
                "N {} {} {}",
                at.as_micros(),
                from.index(),
                packet.payload.len()
            )
        }
    }
}

/// Everything observable about a finished run.
type Digest = (
    Vec<Vec<(SimTime, usize)>>, // per-sink arrivals
    Vec<String>,                // per-link stats
    SimTime,                    // final clock
    u64,                        // events processed
    u64,                        // no-route drops
    Vec<String>,                // trace log
    Recorder,                   // telemetry (wall-clock stripped)
);

/// Build the random topology for `case` in `sim`, returning the sink
/// ids, the link ids, and the total node count. `run_case` and
/// `node_count` share this so partitions can be sized without guessing.
fn build_case(case: u64, sim: &mut Simulator) -> (Vec<NodeId>, Vec<LinkId>, usize) {
    let mut g = Mix(case);
    let chains = g.range(2, 4) as usize;
    let hops = g.range(1, 3) as usize;

    // A shared relay that several chains route through, so partitions
    // genuinely contend on one node's event order.
    let shared = sim.add_node(Relay);
    let mut nodes = 1usize;
    let mut sinks = Vec::new();
    let mut links = Vec::new();
    for c in 0..chains {
        let dst = ip(c as u8);
        let src = sim.add_node(Burst {
            dst,
            count: g.range(30, 120) as usize,
            len: g.range(20, 400) as usize,
            gap: SimDuration::from_micros(g.range(200, 2_000)),
        });
        nodes += 1;
        let via_shared = g.chance(0.5);
        let mut relays = Vec::new();
        for _ in 0..hops {
            relays.push(sim.add_node(Relay));
            nodes += 1;
        }
        let sink = sim.add_node(Sink::default());
        nodes += 1;
        sinks.push(sink);
        let mut path: Vec<NodeId> = Vec::new();
        if via_shared {
            path.push(shared);
        }
        path.extend(relays);
        path.push(sink);
        let mut prev = src;
        for hop in path {
            links.push(sim.add_link(prev, hop, random_link(&mut g)));
            sim.add_route(prev, dst, hop);
            prev = hop;
        }
        // Half the chains get a detour relay and a mid-run route flip
        // at the source, landing while packets are in flight.
        if g.chance(0.5) {
            let detour = sim.add_node(Relay);
            nodes += 1;
            links.push(sim.add_link(src, detour, random_link(&mut g)));
            links.push(sim.add_link(detour, sink, random_link(&mut g)));
            sim.add_route(detour, dst, sink);
            sim.schedule_route_change(
                SimTime::from_micros(g.range(5_000, 60_000)),
                src,
                dst,
                Some(detour),
            );
        }
    }
    (sinks, links, nodes)
}

fn run_case(case: u64, mode: ExecMode, partition: Option<Vec<usize>>) -> Digest {
    let mut sim = Simulator::new(0x00BC_0FFE ^ case);
    sim.set_exec_mode(mode);
    sim.set_telemetry_enabled(true);
    let trace_log: Rc<RefCell<Vec<String>>> = Rc::default();
    {
        let log = Rc::clone(&trace_log);
        sim.set_trace(Box::new(FnTrace(move |ev: &TraceEvent<'_>| {
            log.borrow_mut().push(fmt_trace(ev));
        })));
    }
    let (sinks, links, _) = build_case(case, &mut sim);
    if let Some(p) = partition {
        sim.set_partition(p);
    }
    sim.run_until_idle();

    let arrivals = sinks
        .iter()
        .map(|&s| sim.node::<Sink>(s).unwrap().arrivals.clone())
        .collect();
    let stats = links
        .iter()
        .map(|&l| format!("{:?}", sim.link_stats(l)))
        .collect();
    let mut tele = sim.telemetry_snapshot();
    tele.strip_wall_clock();
    let log = std::mem::take(&mut *trace_log.borrow_mut());
    (
        arrivals,
        stats,
        sim.now(),
        sim.events_processed(),
        sim.no_route_drops(),
        log,
        tele,
    )
}

/// Number of nodes `case` generates (partitions must cover them all).
fn node_count(case: u64) -> usize {
    let mut sim = Simulator::new(0);
    let (_, _, nodes) = build_case(case, &mut sim);
    nodes
}

#[test]
fn pdes_matches_oracle_on_random_topologies() {
    for case in 0..10u64 {
        let oracle = run_case(case, ExecMode::SerialDet, None);
        assert!(
            oracle.0.iter().any(|a| !a.is_empty()),
            "case {case}: degenerate topology delivered nothing"
        );
        for workers in [1usize, 2, 3, 4, 8] {
            let got = run_case(case, ExecMode::Parallel { workers }, None);
            assert_eq!(
                got, oracle,
                "case {case} diverged from the oracle at {workers} workers"
            );
        }
    }
}

#[test]
fn pdes_is_partition_invariant() {
    // Scattered (round-robin) partitions split tightly-coupled chains
    // across workers — the adversarial case for the window protocol.
    for case in [0u64, 3, 7] {
        let oracle = run_case(case, ExecMode::SerialDet, None);
        let n = node_count(case);
        for workers in [2usize, 3] {
            let scattered: Vec<usize> = (0..n).map(|i| i % workers).collect();
            let got = run_case(case, ExecMode::Parallel { workers }, Some(scattered));
            assert_eq!(
                got, oracle,
                "case {case} diverged under a scattered {workers}-way partition"
            );
        }
    }
}

#[test]
fn legacy_serial_default_is_untouched_by_the_refactor() {
    // The default mode is still the legacy serial loop.
    let sim = Simulator::new(1);
    assert_eq!(sim.exec_mode(), ExecMode::Serial);
}
