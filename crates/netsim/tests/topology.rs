//! Integration tests for simulator topologies: tracing, routing,
//! queueing, and utilization accounting.

use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

use bytecache_netsim::channel::ChannelConfig;
use bytecache_netsim::time::{SimDuration, SimTime};
use bytecache_netsim::{Context, FnTrace, LinkConfig, Node, Simulator, TraceEvent};
use bytecache_packet::{Packet, TcpFlags};

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

struct Burst {
    dst: Ipv4Addr,
    count: usize,
    size: usize,
}

impl Node for Burst {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for i in 0..self.count {
            let pkt = Packet::builder()
                .src(A, 1)
                .dst(self.dst, 2)
                .ip_id(i as u16)
                .flags(TcpFlags::PSH)
                .payload(vec![0xEE; self.size])
                .build();
            ctx.forward(pkt);
        }
    }
    fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
}

#[derive(Default)]
struct Sink {
    arrivals: Vec<SimTime>,
}

impl Node for Sink {
    fn on_packet(&mut self, _p: Packet, ctx: &mut Context<'_>) {
        self.arrivals.push(ctx.now());
    }
}

/// Forwards by routing table (an IP router).
struct Router;
impl Node for Router {
    fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
        ctx.forward(p);
    }
}

#[test]
fn trace_sink_sees_transmissions_losses_and_deliveries() {
    let events: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_events = events.clone();
    let mut sim = Simulator::new(3);
    let a = sim.add_node(Burst {
        dst: B,
        count: 200,
        size: 100,
    });
    let b = sim.add_node(Sink::default());
    sim.add_link(
        a,
        b,
        LinkConfig {
            rate_bytes_per_sec: None,
            propagation: SimDuration::from_millis(1),
            channel: ChannelConfig::lossy(0.2),
        },
    );
    sim.add_route(a, B, b);
    sim.set_trace(Box::new(FnTrace(move |e: &TraceEvent<'_>| {
        let tag = match e {
            TraceEvent::Transmit { .. } => "tx",
            TraceEvent::Lost { .. } => "lost",
            TraceEvent::Corrupted { .. } => "corrupt",
            TraceEvent::Deliver { .. } => "rx",
            TraceEvent::NoRoute { .. } => "noroute",
        };
        sink_events.lock().unwrap().push(tag.to_string());
    })));
    sim.run_until_idle();
    let events = events.lock().unwrap();
    let count = |t: &str| events.iter().filter(|e| e.as_str() == t).count();
    assert_eq!(count("tx"), 200);
    assert!(count("lost") > 20, "lost: {}", count("lost"));
    assert_eq!(count("rx") + count("lost"), 200);
    assert_eq!(count("noroute"), 0);
}

#[test]
fn multi_hop_routing_chain() {
    // A -> R1 -> R2 -> C, routes installed hop by hop.
    let mut sim = Simulator::new(1);
    let a = sim.add_node(Burst {
        dst: C,
        count: 10,
        size: 50,
    });
    let r1 = sim.add_node(Router);
    let r2 = sim.add_node(Router);
    let c = sim.add_node(Sink::default());
    for (x, y) in [(a, r1), (r1, r2), (r2, c)] {
        sim.add_link(x, y, LinkConfig::default());
    }
    sim.add_route(a, C, r1);
    sim.add_route(r1, C, r2);
    sim.add_route(r2, C, c);
    sim.run_until_idle();
    let sink = sim.node::<Sink>(c).unwrap();
    assert_eq!(sink.arrivals.len(), 10);
    // Three 1 ms hops.
    assert_eq!(sink.arrivals[0].as_micros(), 3_000);
}

#[test]
fn queueing_delay_grows_linearly_under_a_burst() {
    // 50 packets of 1000 bytes into a 1 MB/s link: the n-th arrives
    // about n ms after the first.
    let mut sim = Simulator::new(1);
    let a = sim.add_node(Burst {
        dst: B,
        count: 50,
        size: 960, // 1000-byte wire size
    });
    let b = sim.add_node(Sink::default());
    sim.add_link(
        a,
        b,
        LinkConfig {
            rate_bytes_per_sec: Some(1_000_000),
            propagation: SimDuration::from_millis(5),
            channel: ChannelConfig::clean(),
        },
    );
    sim.add_route(a, B, b);
    sim.run_until_idle();
    let t = &sim.node::<Sink>(b).unwrap().arrivals;
    assert_eq!(t.len(), 50);
    for i in 1..50 {
        let gap = t[i].as_micros() - t[i - 1].as_micros();
        assert_eq!(gap, 1_000, "serialization spacing at {i}");
    }
}

#[test]
fn per_direction_channels_are_independent() {
    // Loss configured on one direction must not affect the reverse.
    struct Echo;
    impl Node for Echo {
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            let reply = Packet::builder()
                .src(p.ip.dst, p.tcp.dst_port)
                .dst(p.ip.src, p.tcp.src_port)
                .flags(TcpFlags::ACK)
                .payload(p.payload.clone())
                .build();
            ctx.forward(reply);
        }
    }
    let mut sim = Simulator::new(9);
    let a = sim.add_node(Burst {
        dst: B,
        count: 500,
        size: 100,
    });
    let b = sim.add_node(Echo);
    let sink = sim.add_node(Sink::default());
    let fwd = sim.add_link(
        a,
        b,
        LinkConfig {
            channel: ChannelConfig::lossy(0.3),
            ..LinkConfig::default()
        },
    );
    let rev = sim.add_link(b, sink, LinkConfig::default());
    sim.add_route(a, B, b);
    sim.add_route(b, A, sink);
    sim.run_until_idle();
    let fwd_stats = sim.link_stats(fwd);
    let rev_stats = sim.link_stats(rev);
    assert!(fwd_stats.packets_lost > 100);
    assert_eq!(rev_stats.packets_lost, 0);
    // Echoes = exactly the delivered forward packets.
    assert_eq!(rev_stats.packets_offered, fwd_stats.packets_delivered);
}

#[test]
fn run_for_advances_by_a_relative_span() {
    let mut sim = Simulator::new(1);
    let a = sim.add_node(Burst {
        dst: B,
        count: 1,
        size: 10,
    });
    let b = sim.add_node(Sink::default());
    sim.add_link(
        a,
        b,
        LinkConfig {
            propagation: SimDuration::from_millis(10),
            ..LinkConfig::default()
        },
    );
    sim.add_route(a, B, b);
    sim.run_for(SimDuration::from_millis(4));
    assert_eq!(sim.now().as_micros(), 4_000);
    assert!(sim.node::<Sink>(b).unwrap().arrivals.is_empty());
    sim.run_for(SimDuration::from_millis(7));
    assert_eq!(sim.node::<Sink>(b).unwrap().arrivals.len(), 1);
}
