//! Property test: routing-table recomputation in the `topology` module
//! is deterministic and byte-identical across `Serial`, `SerialDet` and
//! `Parallel{1..8}` on random mesh topologies with scheduled attachment
//! changes.
//!
//! Each case draws a random mesh (4–6 relays), binds two or three sink
//! addresses, disables a random subset of edges up front, and schedules
//! a handful of mid-run edge flips — the attachment changes a gateway
//! handoff performs — each followed by [`Topology::reroute_at`], which
//! diffs the derived tables and feeds `schedule_route_change`. Burst
//! sources then push traffic through whatever routes survive.
//!
//! Links are clean (no loss/corruption/reordering) and unpaced, so the
//! run is deterministic in *every* exec mode, including the legacy
//! serial loop whose global-RNG loss draws are otherwise allowed to
//! differ. Same-timestamp events at one node may still pop in a
//! mode-specific order, which cannot change counters, timestamps or
//! routes here (forwarding is timing-independent without serialization
//! delay) — the digest sorts the trace and per-sink arrivals into a
//! canonical order so that permutation is not mistaken for divergence.
//! On top of the traffic digest, the derived routing tables themselves
//! ([`Topology::route_entries`]) are snapshotted at every recomputation
//! checkpoint and byte-compared.

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

use bytecache_netsim::channel::ChannelConfig;
use bytecache_netsim::time::{SimDuration, SimTime};
use bytecache_netsim::{
    Context, ExecMode, FnTrace, LinkConfig, Node, NodeId, Simulator, Topology, TraceEvent,
};
use bytecache_packet::{Packet, TcpFlags};
use proptest::prelude::*;

fn sink_addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 9, i as u8, 1)
}

fn pkt(dst: Ipv4Addr, len: usize) -> Packet {
    Packet::builder()
        .src(Ipv4Addr::new(10, 9, 255, 1), 1)
        .dst(dst, 2)
        .flags(TcpFlags::ACK)
        .payload(vec![0xA5; len])
        .build()
}

/// Emits `count` packets spaced by `gap`.
struct Burst {
    dst: Ipv4Addr,
    count: usize,
    len: usize,
    gap: SimDuration,
}
impl Node for Burst {
    fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.gap, 0);
    }
    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        ctx.forward(pkt(self.dst, self.len));
        if (token as usize) + 1 < self.count {
            ctx.set_timer(self.gap, token + 1);
        }
    }
}

/// Forwards everything along its routing table.
struct Relay;
impl Node for Relay {
    fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
        ctx.forward(p);
    }
}

#[derive(Default)]
struct Sink {
    arrivals: Vec<(SimTime, usize)>,
}
impl Node for Sink {
    fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
        self.arrivals.push((ctx.now(), p.payload.len()));
    }
}

/// A random mesh + attachment-change schedule. Edge indices address the
/// canonical mesh edge list (all pairs `i < j` in order); times are
/// strictly increasing and odd so an environment-scheduled route change
/// never ties with a packet event (which all land on even microseconds:
/// even gaps, even propagation, no serialization delay).
#[derive(Debug, Clone)]
struct Plan {
    relays: usize,
    sinks: usize,
    disabled: Vec<usize>,
    flips: Vec<(u64, usize)>,
    sources: Vec<(usize, u64, usize, usize)>, // (attach relay, gap µs, count, len)
    prop_ms: u64,
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (
        4usize..=6,
        2usize..=3,
        prop::collection::vec(0usize..64, 0..3),
        prop::collection::vec((1_000u64..20_000, 0usize..64), 1..4),
        prop::collection::vec(
            (
                0usize..64,
                prop_oneof![Just(800u64), Just(1_200), Just(1_600), Just(2_400)],
                10usize..40,
                20usize..200,
            ),
            2..=3,
        ),
        1u64..=4,
    )
        .prop_map(|(relays, sinks, disabled, flip_deltas, sources, prop_ms)| {
            let mut at = 5_000u64;
            let flips = flip_deltas
                .into_iter()
                .map(|(delta, edge)| {
                    at += delta;
                    (at | 1, edge)
                })
                .collect();
            Plan {
                relays,
                sinks,
                disabled,
                flips,
                sources,
                prop_ms,
            }
        })
}

/// Canonical mesh edge list for `n` relays: all pairs `i < j` in order.
fn mesh_edges(n: usize) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((i, j));
        }
    }
    edges
}

fn clean_link(prop_ms: u64) -> LinkConfig {
    LinkConfig {
        rate_bytes_per_sec: None,
        propagation: SimDuration::from_millis(prop_ms),
        channel: ChannelConfig::clean(),
    }
}

/// Zero-padded timestamps so a lexicographic sort of the trace lines is
/// chronological; within one timestamp the sort is the canonical order.
fn fmt_trace(ev: &TraceEvent<'_>) -> String {
    match ev {
        TraceEvent::Transmit {
            at,
            from,
            to,
            packet,
        } => format!(
            "{:012} T {} {} {}",
            at.as_micros(),
            from.index(),
            to.index(),
            packet.payload.len()
        ),
        TraceEvent::Lost { at, from, to, .. } => {
            format!("{:012} L {} {}", at.as_micros(), from.index(), to.index())
        }
        TraceEvent::Corrupted { at, from, to, .. } => {
            format!("{:012} C {} {}", at.as_micros(), from.index(), to.index())
        }
        TraceEvent::Deliver { at, to, packet } => format!(
            "{:012} D {} {}",
            at.as_micros(),
            to.index(),
            packet.payload.len()
        ),
        TraceEvent::NoRoute { at, from, packet } => format!(
            "{:012} N {} {}",
            at.as_micros(),
            from.index(),
            packet.payload.len()
        ),
    }
}

/// Everything observable about a finished run, in canonical order.
type Digest = (
    Vec<String>,                // routing tables at every recomputation
    Vec<Vec<(SimTime, usize)>>, // per-sink arrivals (sorted)
    Vec<String>,                // per-link stats
    SimTime,                    // final clock
    u64,                        // events processed
    u64,                        // no-route drops
    Vec<String>,                // trace log (sorted)
);

fn routes_snapshot(topo: &Topology) -> String {
    let mut s = String::new();
    for (node, dst, hop) in topo.route_entries() {
        s.push_str(&format!("{} {} {};", node.index(), dst, hop.index()));
    }
    s
}

fn run_case(plan: &Plan, mode: ExecMode) -> Digest {
    let mut sim = Simulator::new(0xBC_70_70 ^ plan.relays as u64);
    sim.set_exec_mode(mode);
    let trace_log: Rc<RefCell<Vec<String>>> = Rc::default();
    {
        let log = Rc::clone(&trace_log);
        sim.set_trace(Box::new(FnTrace(move |ev: &TraceEvent<'_>| {
            log.borrow_mut().push(fmt_trace(ev));
        })));
    }

    let relays: Vec<NodeId> = (0..plan.relays).map(|_| sim.add_node(Relay)).collect();
    let mut topo = Topology::mesh(&mut sim, &relays, &clean_link(plan.prop_ms));
    let edges = mesh_edges(plan.relays);

    let mut sinks = Vec::new();
    for (i, &relay) in relays.iter().enumerate().take(plan.sinks) {
        let sink = sim.add_node(Sink::default());
        topo.connect(&mut sim, relay, sink, clean_link(plan.prop_ms));
        topo.bind(sink, sink_addr(i));
        sinks.push(sink);
    }
    let mut links = Vec::new();
    for (s, &(attach, gap, count, len)) in plan.sources.iter().enumerate() {
        let src = sim.add_node(Burst {
            dst: sink_addr(s % plan.sinks),
            count,
            len,
            gap: SimDuration::from_micros(gap),
        });
        let relay = relays[attach % plan.relays];
        topo.connect(&mut sim, src, relay, clean_link(plan.prop_ms));
        let (fwd, rev) = topo.links(src, relay);
        links.push(fwd);
        links.push(rev);
    }
    for (i, j) in edges.iter() {
        let (fwd, rev) = topo.links(relays[*i], relays[*j]);
        links.push(fwd);
        links.push(rev);
    }

    for &e in &plan.disabled {
        let (i, j) = edges[e % edges.len()];
        topo.set_edge(relays[i], relays[j], false);
    }
    topo.install_routes(&mut sim);
    let mut route_log = vec![routes_snapshot(&topo)];

    // Scheduled attachment changes: toggle an edge, then recompute and
    // diff the tables into the simulation at the scheduled time.
    for &(at, e) in &plan.flips {
        let (i, j) = edges[e % edges.len()];
        let cur = topo.edge_enabled(relays[i], relays[j]);
        topo.set_edge(relays[i], relays[j], !cur);
        topo.reroute_at(&mut sim, SimTime::from_micros(at));
        route_log.push(routes_snapshot(&topo));
    }

    sim.run_until_idle();

    let mut arrivals: Vec<Vec<(SimTime, usize)>> = sinks
        .iter()
        .map(|&s| sim.node::<Sink>(s).unwrap().arrivals.clone())
        .collect();
    for a in &mut arrivals {
        a.sort_unstable();
    }
    let stats = links
        .iter()
        .map(|&l| format!("{:?}", sim.link_stats(l)))
        .collect();
    let mut log = std::mem::take(&mut *trace_log.borrow_mut());
    log.sort_unstable();
    (
        route_log,
        arrivals,
        stats,
        sim.now(),
        sim.events_processed(),
        sim.no_route_drops(),
        log,
    )
}

fn assert_all_modes_agree(plan: &Plan) {
    let oracle = run_case(plan, ExecMode::SerialDet);
    let legacy = run_case(plan, ExecMode::Serial);
    assert_eq!(
        legacy, oracle,
        "legacy serial diverged from the oracle on a clean topology"
    );
    for workers in [1usize, 2, 4, 8] {
        let got = run_case(plan, ExecMode::Parallel { workers });
        assert_eq!(got, oracle, "diverged from the oracle at {workers} workers");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random mesh + random attachment-change schedule: identical
    /// routing tables and identical traffic in every exec mode.
    #[test]
    fn reroutes_are_mode_invariant(plan in plan_strategy()) {
        assert_all_modes_agree(&plan);
    }
}

/// A fixed dense scenario kept out of proptest so it always runs, even
/// if a future proptest regression shrinks away the interesting cases:
/// every edge flipped once, two sinks contended by three sources.
#[test]
fn fixed_mesh_reroute_agrees_everywhere() {
    let plan = Plan {
        relays: 5,
        sinks: 2,
        disabled: vec![0, 7],
        flips: vec![(9_001, 0), (14_003, 3), (22_005, 7), (31_007, 3)],
        sources: vec![(4, 800, 30, 64), (3, 1_200, 25, 120), (2, 1_600, 20, 40)],
        prop_ms: 2,
    };
    assert_all_modes_agree(&plan);
    // The schedule genuinely changes the derived tables at least once.
    let digest = run_case(&plan, ExecMode::SerialDet);
    assert!(
        digest.0.windows(2).any(|w| w[0] != w[1]),
        "attachment changes never altered the routing tables"
    );
}
