//! The [`Node`] trait and the [`Context`] through which nodes act.

use bytecache_packet::Packet;

use crate::time::{SimDuration, SimTime};

/// Identifier of a node within one [`Simulator`](crate::Simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index (stable for the lifetime of the simulator).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A protocol endpoint or middlebox living inside the simulator.
///
/// Nodes are purely reactive: the simulator calls [`Node::on_packet`]
/// when a packet arrives and [`Node::on_timer`] when a timer the node set
/// fires. All effects go through the [`Context`].
///
/// A node never learns the topology; it emits packets via
/// [`Context::forward`] and the simulator routes them by destination IP
/// using the per-node routing table — like a real IP stack handing a
/// datagram to its FIB.
pub trait Node {
    /// A packet addressed through (or to) this node has arrived.
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>);

    /// A timer previously set with [`Context::set_timer`] fired.
    ///
    /// `token` is the caller-chosen value passed to `set_timer`. Timers
    /// cannot be cancelled; implementations should validate the token
    /// against their current state and ignore stale timers.
    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        let _ = (token, ctx);
    }

    /// Called once when the simulation starts (before any event).
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }
}

/// Deferred effect requested by a node during a callback.
#[derive(Debug)]
pub enum Action {
    /// Route this packet by destination IP and transmit it.
    Forward(Packet),
    /// Schedule [`Node::on_timer`] with the token after the delay.
    Timer(SimDuration, u64),
}

/// Handle through which a node reads the clock and requests effects.
///
/// Actions are buffered and applied by the simulator after the callback
/// returns, in order.
#[derive(Debug)]
pub struct Context<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) actions: &'a mut Vec<Action>,
}

impl Context<'_> {
    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being called.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Emit a packet; the simulator routes it by destination IP from this
    /// node's routing table. Packets without a matching route are counted
    /// and dropped (see [`Simulator::no_route_drops`](crate::Simulator::no_route_drops)).
    pub fn forward(&mut self, packet: Packet) {
        self.actions.push(Action::Forward(packet));
    }

    /// Request an [`Node::on_timer`] callback after `delay` with `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(Action::Timer(delay, token));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_buffers_actions_in_order() {
        let mut actions = Vec::new();
        let mut ctx = Context {
            now: SimTime::from_micros(5),
            node: NodeId(3),
            actions: &mut actions,
        };
        assert_eq!(ctx.now().as_micros(), 5);
        assert_eq!(ctx.node_id().index(), 3);
        ctx.set_timer(SimDuration::from_millis(1), 42);
        ctx.forward(Packet::builder().build());
        assert_eq!(actions.len(), 2);
        assert!(matches!(actions[0], Action::Timer(d, 42) if d.as_micros() == 1000));
        assert!(matches!(actions[1], Action::Forward(_)));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}
