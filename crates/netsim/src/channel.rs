//! Channel impairment models: loss, corruption, and reordering.
//!
//! The paper's experiments vary the packet loss rate of the wireless
//! segment from 0 to 20 %. This module supplies the per-packet random
//! verdicts. Two loss processes are provided:
//!
//! * [`LossModel::Bernoulli`] — independent loss with fixed probability,
//!   exactly what the paper's traffic shaper emulated.
//! * [`LossModel::GilbertElliott`] — a two-state Markov chain producing
//!   *bursty* loss, which is how real wireless channels actually fail.
//!   The ablation benches compare the two at equal mean loss rate.
//!
//! Corruption and reordering are modelled independently: a corrupted
//! packet has random payload bits flipped (every checksum downstream will
//! reject it), and a reordered packet is held back by a random extra
//! delay so later packets overtake it.

use rand::rngs::StdRng;
use rand::Rng;

use crate::time::SimDuration;

/// Per-packet loss process.
#[derive(Debug, Clone)]
pub enum LossModel {
    /// No loss ever.
    None,
    /// Independent (i.i.d.) loss with probability `rate`.
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        rate: f64,
    },
    /// Two-state Gilbert–Elliott Markov model. In the *good* state
    /// packets are lost with probability `good_loss`, in the *bad* state
    /// with `bad_loss`; the chain moves good→bad with `p_good_to_bad`
    /// and bad→good with `p_bad_to_good` per packet.
    GilbertElliott {
        /// P(loss) in the good state (typically ~0).
        good_loss: f64,
        /// P(loss) in the bad state (typically high, e.g. 0.5–1.0).
        bad_loss: f64,
        /// Per-packet transition probability good → bad.
        p_good_to_bad: f64,
        /// Per-packet transition probability bad → good.
        p_bad_to_good: f64,
    },
}

impl LossModel {
    /// A Gilbert–Elliott model tuned to a target mean loss `rate` with a
    /// mean burst length of `burst_len` packets (loss certain in the bad
    /// state, never in the good state).
    ///
    /// Stationary probability of the bad state is then `rate`, giving a
    /// long-run loss rate of `rate` while concentrating losses in runs of
    /// expected length `burst_len`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate < 1` and `burst_len >= 1`.
    #[must_use]
    pub fn bursty(rate: f64, burst_len: f64) -> LossModel {
        assert!((0.0..1.0).contains(&rate), "rate out of range: {rate}");
        assert!(burst_len >= 1.0, "burst length must be >= 1");
        if rate == 0.0 {
            return LossModel::None;
        }
        let p_bad_to_good = 1.0 / burst_len;
        // Stationary P(bad) = g2b / (g2b + b2g) = rate.
        let p_good_to_bad = rate * p_bad_to_good / (1.0 - rate);
        LossModel::GilbertElliott {
            good_loss: 0.0,
            bad_loss: 1.0,
            p_good_to_bad,
            p_bad_to_good,
        }
    }

    /// Check every probability in the model is finite and in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        let check = |name: &str, p: f64| -> Result<(), String> {
            if p.is_finite() && (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("loss model {name} must be in [0, 1], got {p}"))
            }
        };
        match *self {
            LossModel::None => Ok(()),
            LossModel::Bernoulli { rate } => check("rate", rate),
            LossModel::GilbertElliott {
                good_loss,
                bad_loss,
                p_good_to_bad,
                p_bad_to_good,
            } => {
                check("good_loss", good_loss)?;
                check("bad_loss", bad_loss)?;
                check("p_good_to_bad", p_good_to_bad)?;
                check("p_bad_to_good", p_bad_to_good)
            }
        }
    }

    /// Long-run expected loss rate of this model.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { rate } => rate,
            LossModel::GilbertElliott {
                good_loss,
                bad_loss,
                p_good_to_bad,
                p_bad_to_good,
            } => {
                let p_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good);
                (1.0 - p_bad) * good_loss + p_bad * bad_loss
            }
        }
    }
}

/// Runtime state for a [`LossModel`] (the Markov state for
/// Gilbert–Elliott).
#[derive(Debug, Clone)]
pub struct LossState {
    model: LossModel,
    in_bad_state: bool,
}

impl LossState {
    /// Fresh state (Gilbert–Elliott starts in the good state).
    #[must_use]
    pub fn new(model: LossModel) -> Self {
        LossState {
            model,
            in_bad_state: false,
        }
    }

    /// Decide whether the next packet is lost.
    pub fn is_lost(&mut self, rng: &mut StdRng) -> bool {
        match self.model {
            LossModel::None => false,
            LossModel::Bernoulli { rate } => rate > 0.0 && rng.gen_bool(rate.min(1.0)),
            LossModel::GilbertElliott {
                good_loss,
                bad_loss,
                p_good_to_bad,
                p_bad_to_good,
            } => {
                // Transition first, then sample loss in the new state.
                if self.in_bad_state {
                    if rng.gen_bool(p_bad_to_good.clamp(0.0, 1.0)) {
                        self.in_bad_state = false;
                    }
                } else if rng.gen_bool(p_good_to_bad.clamp(0.0, 1.0)) {
                    self.in_bad_state = true;
                }
                let p = if self.in_bad_state {
                    bad_loss
                } else {
                    good_loss
                };
                p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0))
            }
        }
    }
}

/// Full channel impairment configuration for one link direction.
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// Loss process.
    pub loss: LossModel,
    /// Probability a surviving packet has payload bits flipped.
    pub corruption_rate: f64,
    /// Probability a surviving packet is held back (reordered).
    pub reorder_rate: f64,
    /// Maximum extra delay applied to a reordered packet.
    pub reorder_window: SimDuration,
    /// Probability a surviving packet is delivered twice (the copy
    /// arrives late by up to `reorder_window`). Models the duplicates a
    /// retransmitting link layer or a flapping route produces — the
    /// fault that stresses idempotence of control messages.
    pub duplicate_rate: f64,
    /// Number of consecutive packets a reorder verdict holds back
    /// (including the one that drew it). `1` reproduces the legacy
    /// independent-reorder behavior; larger values model a fading dip
    /// that delays a whole run of packets.
    pub reorder_burst_len: u32,
}

impl Default for ChannelConfig {
    /// A clean channel: no loss, corruption, or reordering.
    fn default() -> Self {
        ChannelConfig {
            loss: LossModel::None,
            corruption_rate: 0.0,
            reorder_rate: 0.0,
            reorder_window: SimDuration::from_millis(20),
            duplicate_rate: 0.0,
            reorder_burst_len: 1,
        }
    }
}

impl ChannelConfig {
    /// Clean channel (no impairments).
    #[must_use]
    pub fn clean() -> Self {
        Self::default()
    }

    /// Check every probability is finite and in `[0, 1]` and the burst
    /// length is at least 1.
    ///
    /// A rate outside `[0, 1]` used to slip through construction and
    /// only blow up later inside `gen_bool` mid-simulation (and NaN or
    /// negative rates silently behaved as 0 because every draw is gated
    /// on `rate > 0.0`). [`Channel::new`] now rejects such configs up
    /// front; call this to validate without panicking.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        let check = |name: &str, p: f64| -> Result<(), String> {
            if p.is_finite() && (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("{name} must be in [0, 1], got {p}"))
            }
        };
        self.loss.validate()?;
        check("corruption_rate", self.corruption_rate)?;
        check("reorder_rate", self.reorder_rate)?;
        check("duplicate_rate", self.duplicate_rate)?;
        if self.reorder_burst_len < 1 {
            return Err("reorder_burst_len must be >= 1".to_string());
        }
        Ok(())
    }

    /// Bernoulli loss at `rate`, nothing else — the paper's setting.
    #[must_use]
    pub fn lossy(rate: f64) -> Self {
        ChannelConfig {
            loss: if rate > 0.0 {
                LossModel::Bernoulli { rate }
            } else {
                LossModel::None
            },
            ..Self::default()
        }
    }
}

/// The verdict a channel renders for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver unmodified, on time.
    Deliver,
    /// Drop silently.
    Lose,
    /// Deliver with flipped payload bits (will fail checksums).
    Corrupt,
    /// Deliver late by the given extra delay.
    Reorder(SimDuration),
    /// Deliver on time AND deliver a second copy late by the given
    /// extra delay.
    Duplicate(SimDuration),
}

/// Stateful per-link channel: renders a [`Verdict`] per packet.
#[derive(Debug)]
pub struct Channel {
    config: ChannelConfig,
    loss: LossState,
    /// Packets left in the current reorder burst.
    remaining_burst: u32,
}

impl Channel {
    /// Build the runtime channel for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if [`ChannelConfig::validate`] rejects the configuration —
    /// failing fast at link construction instead of deep inside
    /// `gen_bool` halfway through a simulation.
    #[must_use]
    pub fn new(config: ChannelConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid ChannelConfig: {e}");
        }
        Channel {
            loss: LossState::new(config.loss.clone()),
            config,
            remaining_burst: 0,
        }
    }

    /// Render the verdict for the next packet.
    ///
    /// Draw order matters for determinism: every draw is gated on its
    /// rate being nonzero, and the new fault knobs (burst continuation,
    /// duplication) draw strictly after the legacy ones, so a
    /// configuration that leaves them at their defaults consumes the
    /// exact same RNG stream as before they existed.
    pub fn verdict(&mut self, rng: &mut StdRng) -> Verdict {
        if self.remaining_burst > 0 {
            // Mid-burst: this packet is swept up in the same fading dip.
            self.remaining_burst -= 1;
            let extra = rng.gen_range(1..=self.config.reorder_window.as_micros().max(1));
            return Verdict::Reorder(SimDuration::from_micros(extra));
        }
        if self.loss.is_lost(rng) {
            return Verdict::Lose;
        }
        if self.config.corruption_rate > 0.0 && rng.gen_bool(self.config.corruption_rate) {
            return Verdict::Corrupt;
        }
        if self.config.reorder_rate > 0.0 && rng.gen_bool(self.config.reorder_rate) {
            self.remaining_burst = self.config.reorder_burst_len.saturating_sub(1);
            let extra = rng.gen_range(1..=self.config.reorder_window.as_micros().max(1));
            return Verdict::Reorder(SimDuration::from_micros(extra));
        }
        if self.config.duplicate_rate > 0.0 && rng.gen_bool(self.config.duplicate_rate) {
            let extra = rng.gen_range(1..=self.config.reorder_window.as_micros().max(1));
            return Verdict::Duplicate(SimDuration::from_micros(extra));
        }
        Verdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    fn empirical_loss(model: LossModel, n: usize) -> f64 {
        let mut state = LossState::new(model);
        let mut r = rng();
        let lost = (0..n).filter(|_| state.is_lost(&mut r)).count();
        lost as f64 / n as f64
    }

    #[test]
    fn none_never_loses() {
        assert_eq!(empirical_loss(LossModel::None, 10_000), 0.0);
    }

    #[test]
    fn bernoulli_hits_its_rate() {
        let rate = empirical_loss(LossModel::Bernoulli { rate: 0.05 }, 200_000);
        assert!((rate - 0.05).abs() < 0.005, "empirical rate {rate}");
    }

    #[test]
    fn gilbert_elliott_hits_mean_rate() {
        let model = LossModel::bursty(0.10, 5.0);
        assert!((model.mean_rate() - 0.10).abs() < 1e-9);
        let rate = empirical_loss(model, 400_000);
        assert!((rate - 0.10).abs() < 0.01, "empirical rate {rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Mean run length of consecutive losses should approximate the
        // configured burst length, far above the Bernoulli value (~1.1).
        let mut state = LossState::new(LossModel::bursty(0.10, 8.0));
        let mut r = rng();
        let mut runs = Vec::new();
        let mut current = 0usize;
        for _ in 0..400_000 {
            if state.is_lost(&mut r) {
                current += 1;
            } else if current > 0 {
                runs.push(current);
                current = 0;
            }
        }
        let mean = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        assert!(mean > 4.0, "mean burst {mean} not bursty");
    }

    #[test]
    fn bursty_zero_rate_is_lossless() {
        assert!(matches!(LossModel::bursty(0.0, 4.0), LossModel::None));
    }

    #[test]
    #[should_panic(expected = "rate out of range")]
    fn bursty_rejects_bad_rate() {
        let _ = LossModel::bursty(1.5, 4.0);
    }

    #[test]
    fn channel_verdicts_respect_rates() {
        let cfg = ChannelConfig {
            loss: LossModel::Bernoulli { rate: 0.1 },
            corruption_rate: 0.1,
            reorder_rate: 0.1,
            reorder_window: SimDuration::from_millis(5),
            duplicate_rate: 0.1,
            ..ChannelConfig::default()
        };
        let mut ch = Channel::new(cfg);
        let mut r = rng();
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            match ch.verdict(&mut r) {
                Verdict::Deliver => counts[0] += 1,
                Verdict::Lose => counts[1] += 1,
                Verdict::Corrupt => counts[2] += 1,
                Verdict::Reorder(extra) => {
                    counts[3] += 1;
                    assert!(extra.as_micros() <= 5_000);
                    assert!(extra.as_micros() >= 1);
                }
                Verdict::Duplicate(extra) => {
                    counts[4] += 1;
                    assert!(extra.as_micros() <= 5_000);
                    assert!(extra.as_micros() >= 1);
                }
            }
        }
        let f = |c: usize| c as f64 / n as f64;
        assert!((f(counts[1]) - 0.10).abs() < 0.01); // loss
        assert!((f(counts[2]) - 0.09).abs() < 0.01); // corrupt = 0.9*0.1
        assert!((f(counts[3]) - 0.081).abs() < 0.01); // reorder = 0.81*0.1
        assert!((f(counts[4]) - 0.073).abs() < 0.01); // duplicate = 0.729*0.1
    }

    #[test]
    fn reorder_bursts_sweep_up_following_packets() {
        let cfg = ChannelConfig {
            reorder_rate: 0.05,
            reorder_window: SimDuration::from_millis(2),
            reorder_burst_len: 4,
            ..ChannelConfig::default()
        };
        let mut ch = Channel::new(cfg);
        let mut r = rng();
        let mut runs = Vec::new();
        let mut current = 0usize;
        for _ in 0..100_000 {
            if matches!(ch.verdict(&mut r), Verdict::Reorder(_)) {
                current += 1;
            } else if current > 0 {
                runs.push(current);
                current = 0;
            }
        }
        assert!(!runs.is_empty());
        // Every burst runs at least the configured length (a new draw
        // inside a burst can only extend it).
        assert!(runs.iter().all(|&len| len >= 4), "short burst in {runs:?}");
    }

    #[test]
    fn default_knobs_leave_verdict_stream_unchanged() {
        // The fault knobs must be invisible when off: same seed, same
        // legacy config ⇒ byte-identical verdict stream, because the new
        // draws are gated behind nonzero rates.
        let legacy = ChannelConfig {
            loss: LossModel::Bernoulli { rate: 0.3 },
            corruption_rate: 0.2,
            reorder_rate: 0.2,
            reorder_window: SimDuration::from_millis(2),
            ..ChannelConfig::default()
        };
        let run = |cfg: ChannelConfig| {
            let mut ch = Channel::new(cfg);
            let mut r = StdRng::seed_from_u64(7);
            (0..2000).map(|_| ch.verdict(&mut r)).collect::<Vec<_>>()
        };
        let stream = run(legacy.clone());
        assert!(stream.iter().any(|v| matches!(v, Verdict::Reorder(_))));
        assert!(!stream.iter().any(|v| matches!(v, Verdict::Duplicate(_))));
        assert_eq!(stream, run(legacy));
    }

    #[test]
    fn clean_channel_always_delivers() {
        let mut ch = Channel::new(ChannelConfig::clean());
        let mut r = rng();
        for _ in 0..1000 {
            assert_eq!(ch.verdict(&mut r), Verdict::Deliver);
        }
    }

    #[test]
    fn lossy_constructor_sets_only_loss() {
        let cfg = ChannelConfig::lossy(0.2);
        assert!(matches!(cfg.loss, LossModel::Bernoulli { rate } if rate == 0.2));
        assert_eq!(cfg.corruption_rate, 0.0);
        assert_eq!(cfg.reorder_rate, 0.0);
        assert!(matches!(ChannelConfig::lossy(0.0).loss, LossModel::None));
    }

    #[test]
    fn gilbert_elliott_rate_and_burst_length_within_tolerance() {
        // Statistical sanity for the tournament's bursty axis: with a
        // fixed seed, BOTH the empirical loss rate and the empirical
        // mean burst length must land near the configured values, for
        // every (rate, burst) pair the sweeps use.
        for &(rate, burst) in &[(0.02, 4.0), (0.08, 4.0), (0.10, 8.0)] {
            let model = LossModel::bursty(rate, burst);
            assert!((model.mean_rate() - rate).abs() < 1e-9);
            let mut state = LossState::new(model);
            let mut r = rng();
            let n = 600_000;
            let mut lost = 0usize;
            let mut runs = Vec::new();
            let mut current = 0usize;
            for _ in 0..n {
                if state.is_lost(&mut r) {
                    lost += 1;
                    current += 1;
                } else if current > 0 {
                    runs.push(current);
                    current = 0;
                }
            }
            let emp_rate = lost as f64 / n as f64;
            let emp_burst = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
            assert!(
                (emp_rate - rate).abs() < rate * 0.10,
                "rate {rate}/burst {burst}: empirical loss rate {emp_rate}"
            );
            assert!(
                (emp_burst - burst).abs() < burst * 0.10,
                "rate {rate}/burst {burst}: empirical mean burst {emp_burst}"
            );
        }
    }

    #[test]
    fn boundary_rates_zero_and_one_are_valid_and_behave() {
        // 0.0 everywhere: valid and always delivers.
        let zero = ChannelConfig {
            loss: LossModel::Bernoulli { rate: 0.0 },
            corruption_rate: 0.0,
            reorder_rate: 0.0,
            duplicate_rate: 0.0,
            ..ChannelConfig::default()
        };
        assert!(zero.validate().is_ok());
        let mut ch = Channel::new(zero);
        let mut r = rng();
        assert!((0..1000).all(|_| ch.verdict(&mut r) == Verdict::Deliver));

        // 1.0 is a legal probability at every knob; each verdict short-
        // circuits in priority order (loss > corrupt > reorder > dup).
        let mut all_lose = Channel::new(ChannelConfig {
            loss: LossModel::Bernoulli { rate: 1.0 },
            ..ChannelConfig::default()
        });
        assert!((0..100).all(|_| all_lose.verdict(&mut r) == Verdict::Lose));
        let mut all_corrupt = Channel::new(ChannelConfig {
            corruption_rate: 1.0,
            ..ChannelConfig::default()
        });
        assert!((0..100).all(|_| all_corrupt.verdict(&mut r) == Verdict::Corrupt));
        let mut all_reorder = Channel::new(ChannelConfig {
            reorder_rate: 1.0,
            ..ChannelConfig::default()
        });
        assert!((0..100).all(|_| matches!(all_reorder.verdict(&mut r), Verdict::Reorder(_))));
        let mut all_dup = Channel::new(ChannelConfig {
            duplicate_rate: 1.0,
            ..ChannelConfig::default()
        });
        assert!((0..100).all(|_| matches!(all_dup.verdict(&mut r), Verdict::Duplicate(_))));
        let ge_boundary = ChannelConfig {
            loss: LossModel::GilbertElliott {
                good_loss: 0.0,
                bad_loss: 1.0,
                p_good_to_bad: 0.0,
                p_bad_to_good: 1.0,
            },
            ..ChannelConfig::default()
        };
        assert!(ge_boundary.validate().is_ok());
        let _ = Channel::new(ge_boundary);
    }

    #[test]
    fn out_of_range_rates_fail_validation() {
        let bad = [f64::NAN, f64::INFINITY, -0.1, 1.0 + 1e-9, 1.5];
        for &rate in &bad {
            assert!(
                ChannelConfig {
                    loss: LossModel::Bernoulli { rate },
                    ..ChannelConfig::default()
                }
                .validate()
                .is_err(),
                "loss rate {rate} accepted"
            );
            assert!(
                ChannelConfig {
                    corruption_rate: rate,
                    ..ChannelConfig::default()
                }
                .validate()
                .is_err(),
                "corruption_rate {rate} accepted"
            );
            assert!(
                ChannelConfig {
                    reorder_rate: rate,
                    ..ChannelConfig::default()
                }
                .validate()
                .is_err(),
                "reorder_rate {rate} accepted"
            );
            assert!(
                ChannelConfig {
                    duplicate_rate: rate,
                    ..ChannelConfig::default()
                }
                .validate()
                .is_err(),
                "duplicate_rate {rate} accepted"
            );
            assert!(
                ChannelConfig {
                    loss: LossModel::GilbertElliott {
                        good_loss: 0.0,
                        bad_loss: rate,
                        p_good_to_bad: 0.1,
                        p_bad_to_good: 0.1,
                    },
                    ..ChannelConfig::default()
                }
                .validate()
                .is_err(),
                "GE bad_loss {rate} accepted"
            );
        }
        assert!(ChannelConfig {
            reorder_burst_len: 0,
            ..ChannelConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid ChannelConfig")]
    fn channel_construction_rejects_over_unity_rate() {
        // Previously this panicked only when the first packet hit
        // `gen_bool(1.5)` mid-simulation; now it fails at construction.
        let _ = Channel::new(ChannelConfig {
            loss: LossModel::Bernoulli { rate: 1.5 },
            ..ChannelConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "invalid ChannelConfig")]
    fn channel_construction_rejects_nan_rate() {
        // NaN used to silently behave as "never" (every draw is gated on
        // `rate > 0.0`, which NaN fails); now it is rejected loudly.
        let _ = Channel::new(ChannelConfig {
            corruption_rate: f64::NAN,
            ..ChannelConfig::default()
        });
    }

    #[test]
    fn identical_seeds_give_identical_verdict_streams() {
        let cfg = ChannelConfig {
            loss: LossModel::Bernoulli { rate: 0.3 },
            corruption_rate: 0.2,
            reorder_rate: 0.2,
            reorder_window: SimDuration::from_millis(2),
            duplicate_rate: 0.1,
            reorder_burst_len: 3,
        };
        let run = || {
            let mut ch = Channel::new(cfg.clone());
            let mut r = StdRng::seed_from_u64(99);
            (0..1000).map(|_| ch.verdict(&mut r)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
