//! Node → worker partitioning and lookahead for the parallel engine.
//!
//! The partition decides which worker owns each node. A link is owned
//! by the worker of its *sender* (serialization backlog, channel RNG
//! draws and traffic counters all happen sender-side, which keeps them
//! deterministic); only delivery events cross worker boundaries. The
//! conservative synchronizer's lookahead is the minimum propagation
//! delay over links whose endpoints live on different workers: a packet
//! transmitted at time `t` over such a link cannot arrive before
//! `t + propagation`, so a worker at safe time `s` may freely process
//! every event before `s + lookahead`.

/// A validated node → worker assignment plus the synchronization
/// lookahead it induces.
#[derive(Debug, Clone)]
pub(crate) struct PartitionPlan {
    /// `assignment[i]` = worker owning node `i` (validated `< workers`).
    pub(crate) assignment: Vec<usize>,
    /// Minimum propagation delay (µs) over cross-worker links;
    /// `u64::MAX` when no link crosses a boundary.
    pub(crate) lookahead_us: u64,
}

impl PartitionPlan {
    /// Build a plan from an assignment and the link endpoints
    /// (`(from, to, propagation µs)` per link).
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not cover every node or names a
    /// worker `>= workers`.
    pub(crate) fn new(
        assignment: Vec<usize>,
        workers: usize,
        links: impl Iterator<Item = (usize, usize, u64)>,
    ) -> Self {
        assert!(workers >= 1, "need at least one worker");
        assert!(
            assignment.iter().all(|&w| w < workers),
            "partition names a worker >= {workers}"
        );
        let mut lookahead_us = u64::MAX;
        for (from, to, prop_us) in links {
            assert!(
                from < assignment.len() && to < assignment.len(),
                "partition does not cover every node"
            );
            if assignment[from] != assignment[to] {
                lookahead_us = lookahead_us.min(prop_us);
            }
        }
        PartitionPlan {
            assignment,
            lookahead_us,
        }
    }

    /// Default assignment: `n` nodes split into `workers` contiguous
    /// blocks (experiment topologies lay out tightly-coupled chains at
    /// adjacent ids, so contiguous blocks keep most traffic local).
    pub(crate) fn blocks(n: usize, workers: usize) -> Vec<usize> {
        if workers <= 1 || n == 0 {
            return vec![0; n];
        }
        let per = n.div_ceil(workers);
        (0..n).map(|i| (i / per).min(workers - 1)).collect()
    }
}

/// SplitMix64 — the finalizer used to derive per-link RNG seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seed of link `link`'s channel RNG stream: a splitmix64 mix of the
/// simulation seed and the link id. Depends only on `(seed, link)` —
/// never on the partition or worker count — so every execution mode
/// draws identical streams.
pub(crate) fn link_rng_seed(seed: u64, link: usize) -> u64 {
    splitmix64(seed ^ splitmix64(link as u64 ^ 0xA076_1D64_78BD_642F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cover_all_nodes_contiguously() {
        assert_eq!(PartitionPlan::blocks(4, 1), vec![0, 0, 0, 0]);
        assert_eq!(PartitionPlan::blocks(4, 2), vec![0, 0, 1, 1]);
        assert_eq!(PartitionPlan::blocks(5, 2), vec![0, 0, 0, 1, 1]);
        assert_eq!(PartitionPlan::blocks(3, 8), vec![0, 1, 2]);
        assert_eq!(PartitionPlan::blocks(0, 2), Vec::<usize>::new());
    }

    #[test]
    fn lookahead_is_min_cross_propagation() {
        let links = vec![
            (0, 1, 500),  // local to worker 0
            (1, 2, 300),  // crosses 0 → 1
            (2, 3, 100),  // local to worker 1
            (3, 0, 1000), // crosses 1 → 0
        ];
        let plan = PartitionPlan::new(vec![0, 0, 1, 1], 2, links.into_iter());
        assert_eq!(plan.lookahead_us, 300);
    }

    #[test]
    fn no_cross_links_means_unbounded_lookahead() {
        let links = vec![(0, 1, 500)];
        let plan = PartitionPlan::new(vec![0, 0, 1], 2, links.into_iter());
        assert_eq!(plan.lookahead_us, u64::MAX);
    }

    #[test]
    fn link_seeds_differ_per_link_and_per_sim_seed() {
        assert_ne!(link_rng_seed(1, 0), link_rng_seed(1, 1));
        assert_ne!(link_rng_seed(1, 0), link_rng_seed(2, 0));
        assert_eq!(link_rng_seed(7, 3), link_rng_seed(7, 3));
    }

    #[test]
    #[should_panic(expected = "names a worker")]
    fn assignment_must_stay_in_range() {
        let _ = PartitionPlan::new(vec![0, 2], 2, std::iter::empty());
    }
}
