//! The event loop: queue, routing, links, and node dispatch.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;

use bytecache_packet::Packet;
use bytecache_telemetry::{Event as TelemetryEvent, EventKind, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::channel::Verdict;
use crate::link::{LinkConfig, LinkId, LinkState};
use crate::node::{Action, Context, Node, NodeId};
use crate::stats::LinkStats;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceSink};

/// Blanket helper granting `Any`-style downcasting to all nodes, so the
/// harness can inspect endpoint state (e.g. download statistics) after a
/// run via [`Simulator::node`].
pub trait AsAny {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[derive(Debug)]
enum Event {
    Deliver {
        to: NodeId,
        packet: Packet,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    RouteChange {
        node: NodeId,
        dst: Ipv4Addr,
        next: Option<NodeId>,
    },
}

struct Queued {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event simulator.
///
/// Construct with a seed, add nodes/links/routes, then run. See the
/// [crate docs](crate) for the model and an end-to-end example in the
/// `bytecache-experiments` crate.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Queued>>,
    nodes: Vec<Box<dyn SimNode>>,
    links: Vec<LinkState>,
    link_index: HashMap<(NodeId, NodeId), LinkId>,
    routes: Vec<HashMap<Ipv4Addr, NodeId>>,
    rng: StdRng,
    no_route_drops: u64,
    trace: Option<Box<dyn TraceSink>>,
    telemetry: Recorder,
    started: bool,
    event_budget: u64,
    events_processed: u64,
}

/// Object-safe supertrait combining [`Node`] and downcasting.
pub(crate) trait SimNode: Node + AsAny {}
impl<T: Node + AsAny> SimNode for T {}

impl Simulator {
    /// New simulator; all channel randomness derives from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            links: Vec::new(),
            link_index: HashMap::new(),
            routes: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            no_route_drops: 0,
            trace: None,
            telemetry: Recorder::disabled(),
            started: false,
            event_budget: 200_000_000,
            events_processed: 0,
        }
    }

    /// Install a node; returns its id.
    pub fn add_node(&mut self, node: impl Node + Any) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Box::new(node));
        self.routes.push(HashMap::new());
        id
    }

    /// Install a unidirectional link `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if a link already exists in that direction or either node
    /// id is unknown.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, config: LinkConfig) -> LinkId {
        assert!(from.0 < self.nodes.len(), "unknown node {from}");
        assert!(to.0 < self.nodes.len(), "unknown node {to}");
        assert!(
            !self.link_index.contains_key(&(from, to)),
            "duplicate link {from} -> {to}"
        );
        let id = LinkId(self.links.len());
        self.links.push(LinkState::new(config));
        self.link_index.insert((from, to), id);
        id
    }

    /// Install a pair of links `a → b` and `b → a` with the same
    /// configuration (channel state is independent per direction).
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        config: LinkConfig,
    ) -> (LinkId, LinkId) {
        (
            self.add_link(a, b, config.clone()),
            self.add_link(b, a, config),
        )
    }

    /// Add (or replace) a route: at `node`, packets destined to `dst`
    /// are transmitted to `next_hop`.
    pub fn add_route(&mut self, node: NodeId, dst: Ipv4Addr, next_hop: NodeId) {
        self.routes[node.0].insert(dst, next_hop);
    }

    /// Remove a route; packets to `dst` at `node` are then dropped (and
    /// counted in [`no_route_drops`](Self::no_route_drops)).
    pub fn remove_route(&mut self, node: NodeId, dst: Ipv4Addr) {
        self.routes[node.0].remove(&dst);
    }

    /// Schedule a route change at an absolute time (the mobility
    /// handoff primitive). `next = None` removes the route.
    pub fn schedule_route_change(
        &mut self,
        at: SimTime,
        node: NodeId,
        dst: Ipv4Addr,
        next: Option<NodeId>,
    ) {
        self.push(at, Event::RouteChange { node, dst, next });
    }

    /// Install a trace sink receiving every notable event.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Enable or disable the simulator's own telemetry recorder (queue
    /// depth and per-hop latency histograms, channel-drop events).
    /// Disabled by default; when off, instrumentation is a single branch
    /// per event.
    pub fn set_telemetry_enabled(&mut self, enabled: bool) {
        self.telemetry.set_enabled(enabled);
    }

    /// Borrow the simulator's telemetry recorder.
    #[must_use]
    pub fn telemetry(&self) -> &Recorder {
        &self.telemetry
    }

    /// Snapshot of the simulator's telemetry (empty-disabled when
    /// telemetry is off). Adds the `sim.events_processed` and
    /// `sim.no_route_drops` counters on top of the live series.
    #[must_use]
    pub fn telemetry_snapshot(&self) -> Recorder {
        if !self.telemetry.is_enabled() {
            return Recorder::disabled();
        }
        let mut snap = self.telemetry.clone();
        snap.count("sim.events_processed", self.events_processed);
        snap.count("sim.no_route_drops", self.no_route_drops);
        snap
    }

    /// Abort the run (panic) if more than `budget` events are processed —
    /// a guard against accidental infinite protocol loops.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Packets discarded because the emitting node had no route.
    #[must_use]
    pub fn no_route_drops(&self) -> u64 {
        self.no_route_drops
    }

    /// Traffic counters of a link.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    #[must_use]
    pub fn link_stats(&self, link: LinkId) -> &LinkStats {
        &self.links[link.0].stats
    }

    /// Borrow a node downcast to its concrete type.
    ///
    /// Returns `None` if the node is not a `T`.
    #[must_use]
    pub fn node<T: Any>(&self, id: NodeId) -> Option<&T> {
        // Deref through the Box so the call dispatches on `dyn SimNode`
        // (the blanket AsAny impl would otherwise match the Box itself).
        (*self.nodes[id.0]).as_any().downcast_ref::<T>()
    }

    /// Mutably borrow a node downcast to its concrete type.
    #[must_use]
    pub fn node_mut<T: Any>(&mut self, id: NodeId) -> Option<&mut T> {
        (*self.nodes[id.0]).as_any_mut().downcast_mut::<T>()
    }

    fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Queued { at, seq, event }));
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let mut actions = Vec::new();
        for i in 0..self.nodes.len() {
            let node = NodeId(i);
            let mut ctx = Context {
                now: self.now,
                node,
                actions: &mut actions,
            };
            self.nodes[i].on_start(&mut ctx);
            let drained: Vec<Action> = std::mem::take(&mut actions);
            self.apply_actions(node, drained);
        }
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Forward(packet) => self.route_and_transmit(node, packet),
                Action::Timer(delay, token) => {
                    self.push(self.now + delay, Event::Timer { node, token });
                }
            }
        }
    }

    fn route_and_transmit(&mut self, from: NodeId, packet: Packet) {
        let Some(&next) = self.routes[from.0].get(&packet.ip.dst) else {
            self.no_route_drops += 1;
            if self.telemetry.is_enabled() {
                self.telemetry.event(
                    TelemetryEvent::new(EventKind::NoRoute)
                        .at_us(self.now.as_micros())
                        .flow(packet.flow().stable_hash())
                        .details(from.0 as u64, 0),
                );
            }
            if let Some(t) = self.trace.as_mut() {
                t.event(&TraceEvent::NoRoute {
                    at: self.now,
                    from,
                    packet: &packet,
                });
            }
            return;
        };
        let link_id = *self
            .link_index
            .get(&(from, next))
            .unwrap_or_else(|| panic!("route {from} -> {next} without a link"));
        let link = &mut self.links[link_id.0];
        let wire = packet.wire_len();
        link.stats.packets_offered += 1;
        link.stats.bytes_offered += wire as u64;
        if self.telemetry.is_enabled() {
            self.telemetry.count("sim.transmits", 1);
        }
        if let Some(t) = self.trace.as_mut() {
            t.event(&TraceEvent::Transmit {
                at: self.now,
                from,
                to: next,
                packet: &packet,
            });
        }
        let depart = self.now.max(link.busy_until);
        let done = depart + link.config.serialization_time(wire);
        link.busy_until = done;
        match link.channel.verdict(&mut self.rng) {
            Verdict::Lose => {
                link.stats.packets_lost += 1;
                if self.telemetry.is_enabled() {
                    self.telemetry.event(
                        TelemetryEvent::new(EventKind::PacketLost)
                            .at_us(self.now.as_micros())
                            .flow(packet.flow().stable_hash())
                            .details(from.0 as u64, wire as u64),
                    );
                }
                if let Some(t) = self.trace.as_mut() {
                    t.event(&TraceEvent::Lost {
                        at: self.now,
                        from,
                        to: next,
                        packet: &packet,
                    });
                }
            }
            Verdict::Corrupt => {
                // A corrupted packet is delivered on the wire but fails
                // the IP/TCP (or byte caching shim) checksum at the
                // receiver, which discards it. Both outcomes are a drop;
                // we account it separately and do not dispatch it.
                link.stats.packets_corrupted += 1;
                if self.telemetry.is_enabled() {
                    self.telemetry.event(
                        TelemetryEvent::new(EventKind::PacketCorrupted)
                            .at_us(self.now.as_micros())
                            .flow(packet.flow().stable_hash())
                            .details(from.0 as u64, wire as u64),
                    );
                }
                if let Some(t) = self.trace.as_mut() {
                    t.event(&TraceEvent::Corrupted {
                        at: self.now,
                        from,
                        to: next,
                        packet: &packet,
                    });
                }
            }
            Verdict::Deliver => {
                link.stats.packets_delivered += 1;
                link.stats.bytes_delivered += wire as u64;
                let arrive = done + link.config.propagation;
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .record("sim.hop_latency_us", (arrive - self.now).as_micros());
                }
                self.push(arrive, Event::Deliver { to: next, packet });
            }
            Verdict::Reorder(extra) => {
                link.stats.packets_delivered += 1;
                link.stats.bytes_delivered += wire as u64;
                link.stats.packets_reordered += 1;
                let arrive = done + link.config.propagation + extra;
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .record("sim.hop_latency_us", (arrive - self.now).as_micros());
                }
                self.push(arrive, Event::Deliver { to: next, packet });
            }
            Verdict::Duplicate(extra) => {
                // The original arrives on time; a copy follows `extra`
                // later. Only the original counts as delivered payload —
                // the copy is channel noise the receiver must tolerate.
                link.stats.packets_delivered += 1;
                link.stats.bytes_delivered += wire as u64;
                link.stats.packets_duplicated += 1;
                let arrive = done + link.config.propagation;
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .record("sim.hop_latency_us", (arrive - self.now).as_micros());
                }
                self.push(
                    arrive + extra,
                    Event::Deliver {
                        to: next,
                        packet: packet.clone(),
                    },
                );
                self.push(arrive, Event::Deliver { to: next, packet });
            }
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Deliver { to, packet } => {
                if self.telemetry.is_enabled() {
                    self.telemetry.count("sim.delivers", 1);
                }
                if let Some(t) = self.trace.as_mut() {
                    t.event(&TraceEvent::Deliver {
                        at: self.now,
                        to,
                        packet: &packet,
                    });
                }
                let mut actions = Vec::new();
                let mut ctx = Context {
                    now: self.now,
                    node: to,
                    actions: &mut actions,
                };
                self.nodes[to.0].on_packet(packet, &mut ctx);
                self.apply_actions(to, actions);
            }
            Event::Timer { node, token } => {
                let mut actions = Vec::new();
                let mut ctx = Context {
                    now: self.now,
                    node,
                    actions: &mut actions,
                };
                self.nodes[node.0].on_timer(token, &mut ctx);
                self.apply_actions(node, actions);
            }
            Event::RouteChange { node, dst, next } => match next {
                Some(n) => self.add_route(node, dst, n),
                None => self.remove_route(node, dst),
            },
        }
    }

    fn step(&mut self) -> bool {
        let Some(Reverse(q)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(q.at >= self.now, "time went backwards");
        self.now = q.at;
        self.events_processed += 1;
        if self.telemetry.is_enabled() {
            self.telemetry
                .record("sim.queue_depth", self.queue.len() as u64);
        }
        assert!(
            self.events_processed <= self.event_budget,
            "event budget exhausted ({} events): likely a protocol loop",
            self.event_budget
        );
        self.dispatch(q.event);
        true
    }

    /// Run until no events remain; returns the final simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the event budget is exhausted (see
    /// [`set_event_budget`](Self::set_event_budget)).
    pub fn run_until_idle(&mut self) -> SimTime {
        self.start_if_needed();
        while self.step() {}
        self.now
    }

    /// Run until the given absolute time (events at exactly `t` are
    /// processed); later events stay queued.
    pub fn run_until(&mut self, t: SimTime) -> SimTime {
        self.start_if_needed();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > t {
                break;
            }
            self.step();
        }
        self.now = self.now.max(t);
        self.now
    }

    /// Run for a span of simulated time from now.
    pub fn run_for(&mut self, d: SimDuration) -> SimTime {
        let target = self.now + d;
        self.run_until(target)
    }
}

impl core::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("queued", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelConfig;
    use bytecache_packet::TcpFlags;
    use std::net::Ipv4Addr;

    const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn pkt(src: Ipv4Addr, dst: Ipv4Addr, len: usize) -> Packet {
        Packet::builder()
            .src(src, 1)
            .dst(dst, 2)
            .flags(TcpFlags::ACK)
            .payload(vec![0xAB; len])
            .build()
    }

    /// Sends `count` packets at start; records arrival times of replies.
    struct Sender {
        dst: Ipv4Addr,
        src: Ipv4Addr,
        count: usize,
        len: usize,
    }
    impl Node for Sender {
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.count {
                ctx.forward(pkt(self.src, self.dst, self.len));
            }
        }
    }

    /// Records arrival times and payload sizes.
    #[derive(Default)]
    struct Receiver {
        arrivals: Vec<(SimTime, usize)>,
    }
    impl Node for Receiver {
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            self.arrivals.push((ctx.now(), p.payload.len()));
        }
    }

    /// Echoes every packet back to its source.
    struct Echo;
    impl Node for Echo {
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            let reply = Packet::builder()
                .src(p.ip.dst, p.tcp.dst_port)
                .dst(p.ip.src, p.tcp.src_port)
                .flags(TcpFlags::ACK)
                .payload(p.payload.clone())
                .build();
            ctx.forward(reply);
        }
    }

    #[test]
    fn packets_flow_and_arrive_after_prop_delay() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 1,
            len: 100,
        });
        let b = sim.add_node(Receiver::default());
        sim.add_link(
            a,
            b,
            LinkConfig {
                rate_bytes_per_sec: None,
                propagation: SimDuration::from_millis(5),
                channel: ChannelConfig::clean(),
            },
        );
        sim.add_route(a, B_IP, b);
        sim.run_until_idle();
        let rx = sim.node::<Receiver>(b).unwrap();
        assert_eq!(rx.arrivals.len(), 1);
        assert_eq!(rx.arrivals[0].0.as_micros(), 5_000);
        assert_eq!(rx.arrivals[0].1, 100);
    }

    #[test]
    fn rate_limit_spaces_arrivals_by_serialization_time() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 3,
            len: 960, // wire = 1000 bytes
        });
        let b = sim.add_node(Receiver::default());
        sim.add_link(
            a,
            b,
            LinkConfig {
                rate_bytes_per_sec: Some(1_000_000), // 1000 bytes = 1 ms
                propagation: SimDuration::from_millis(2),
                channel: ChannelConfig::clean(),
            },
        );
        sim.add_route(a, B_IP, b);
        sim.run_until_idle();
        let rx = sim.node::<Receiver>(b).unwrap();
        let times: Vec<u64> = rx.arrivals.iter().map(|(t, _)| t.as_micros()).collect();
        assert_eq!(times, vec![3_000, 4_000, 5_000]);
    }

    #[test]
    fn echo_round_trip() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 1,
            len: 10,
        });
        let b = sim.add_node(Echo);
        let c = sim.add_node(Receiver::default());
        // a -> b, b -> c (replies to A_IP are routed to the receiver node
        // to observe them).
        sim.add_duplex_link(a, b, LinkConfig::default());
        sim.add_link(b, c, LinkConfig::default());
        sim.add_route(a, B_IP, b);
        sim.add_route(b, A_IP, c);
        sim.run_until_idle();
        assert_eq!(sim.node::<Receiver>(c).unwrap().arrivals.len(), 1);
    }

    #[test]
    fn loss_counted_and_not_delivered() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 2000,
            len: 10,
        });
        let b = sim.add_node(Receiver::default());
        let l = sim.add_link(
            a,
            b,
            LinkConfig {
                rate_bytes_per_sec: None,
                propagation: SimDuration::from_millis(1),
                channel: ChannelConfig::lossy(0.25),
            },
        );
        sim.add_route(a, B_IP, b);
        sim.run_until_idle();
        let stats = sim.link_stats(l).clone();
        assert_eq!(stats.packets_offered, 2000);
        assert!(stats.packets_lost > 400 && stats.packets_lost < 600);
        let rx = sim.node::<Receiver>(b).unwrap();
        assert_eq!(rx.arrivals.len() as u64, stats.packets_delivered);
    }

    #[test]
    fn no_route_is_counted() {
        let mut sim = Simulator::new(1);
        let _a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 4,
            len: 10,
        });
        sim.run_until_idle();
        assert_eq!(sim.no_route_drops(), 4);
    }

    #[test]
    fn scheduled_route_change_redirects_traffic() {
        struct SlowSender;
        impl Node for SlowSender {
            fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
                ctx.forward(pkt(A_IP, B_IP, 10));
                if token < 9 {
                    ctx.set_timer(SimDuration::from_millis(10), token + 1);
                }
            }
        }
        let mut sim = Simulator::new(1);
        let a = sim.add_node(SlowSender);
        let b1 = sim.add_node(Receiver::default());
        let b2 = sim.add_node(Receiver::default());
        sim.add_link(a, b1, LinkConfig::default());
        sim.add_link(a, b2, LinkConfig::default());
        sim.add_route(a, B_IP, b1);
        // After 45 ms (between packet 5 and 6), hand off to b2.
        sim.schedule_route_change(SimTime::from_micros(45_000), a, B_IP, Some(b2));
        sim.run_until_idle();
        assert_eq!(sim.node::<Receiver>(b1).unwrap().arrivals.len(), 5);
        assert_eq!(sim.node::<Receiver>(b2).unwrap().arrivals.len(), 5);
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        #[derive(Default)]
        struct TimerNode {
            fired: Vec<(u64, SimTime)>,
        }
        impl Node for TimerNode {
            fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(5), 2);
                ctx.set_timer(SimDuration::from_millis(1), 1);
            }
            fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
                self.fired.push((token, ctx.now()));
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node(TimerNode::default());
        sim.run_until_idle();
        let node = sim.node::<TimerNode>(n).unwrap();
        assert_eq!(node.fired.len(), 2);
        assert_eq!(node.fired[0].0, 1);
        assert_eq!(node.fired[1].0, 2);
        assert_eq!(node.fired[1].1.as_micros(), 5_000);
    }

    #[test]
    fn run_until_stops_at_time() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 1,
            len: 10,
        });
        let b = sim.add_node(Receiver::default());
        sim.add_link(
            a,
            b,
            LinkConfig {
                rate_bytes_per_sec: None,
                propagation: SimDuration::from_millis(10),
                channel: ChannelConfig::clean(),
            },
        );
        sim.add_route(a, B_IP, b);
        sim.run_until(SimTime::from_micros(5_000));
        assert_eq!(sim.node::<Receiver>(b).unwrap().arrivals.len(), 0);
        sim.run_until_idle();
        assert_eq!(sim.node::<Receiver>(b).unwrap().arrivals.len(), 1);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node(Sender {
                src: A_IP,
                dst: B_IP,
                count: 500,
                len: 100,
            });
            let b = sim.add_node(Receiver::default());
            let l = sim.add_link(
                a,
                b,
                LinkConfig {
                    rate_bytes_per_sec: Some(1_000_000),
                    propagation: SimDuration::from_millis(3),
                    channel: ChannelConfig::lossy(0.1),
                },
            );
            sim.add_route(a, B_IP, b);
            sim.run_until_idle();
            (
                sim.link_stats(l).clone(),
                sim.node::<Receiver>(b).unwrap().arrivals.len(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0.packets_lost, run(8).0.packets_lost);
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn event_budget_catches_loops() {
        struct Looper;
        impl Node for Looper {
            fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_micros(1), 0);
            }
            fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_micros(1), 0);
            }
        }
        let mut sim = Simulator::new(1);
        sim.add_node(Looper);
        sim.set_event_budget(1000);
        sim.run_until_idle();
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_rejected() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Echo);
        let b = sim.add_node(Echo);
        sim.add_link(a, b, LinkConfig::default());
        sim.add_link(a, b, LinkConfig::default());
    }

    #[test]
    fn reordering_delivers_late() {
        let mut sim = Simulator::new(5);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 2000,
            len: 10,
        });
        let b = sim.add_node(Receiver::default());
        let l = sim.add_link(
            a,
            b,
            LinkConfig {
                rate_bytes_per_sec: Some(10_000_000),
                propagation: SimDuration::from_millis(1),
                channel: ChannelConfig {
                    reorder_rate: 0.2,
                    reorder_window: SimDuration::from_millis(5),
                    ..ChannelConfig::clean()
                },
            },
        );
        sim.add_route(a, B_IP, b);
        sim.run_until_idle();
        let stats = sim.link_stats(l);
        assert!(stats.packets_reordered > 200);
        // All packets still arrive.
        assert_eq!(stats.packets_delivered, 2000);
        // Arrival times are NOT monotone in send order: find an inversion.
        let rx = sim.node::<Receiver>(b).unwrap();
        assert_eq!(rx.arrivals.len(), 2000);
    }

    #[test]
    fn duplicates_deliver_the_packet_twice() {
        let mut sim = Simulator::new(6);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 2000,
            len: 10,
        });
        let b = sim.add_node(Receiver::default());
        let l = sim.add_link(
            a,
            b,
            LinkConfig {
                rate_bytes_per_sec: Some(10_000_000),
                propagation: SimDuration::from_millis(1),
                channel: ChannelConfig {
                    duplicate_rate: 0.2,
                    ..ChannelConfig::clean()
                },
            },
        );
        sim.add_route(a, B_IP, b);
        sim.run_until_idle();
        let stats = sim.link_stats(l);
        assert!(stats.packets_duplicated > 200, "{stats:?}");
        // Only originals count as delivered; each duplicate arrives as
        // one extra packet at the receiver.
        assert_eq!(stats.packets_delivered, 2000);
        let rx = sim.node::<Receiver>(b).unwrap();
        assert_eq!(rx.arrivals.len() as u64, 2000 + stats.packets_duplicated);
    }
}
