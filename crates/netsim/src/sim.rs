//! The event loop: queue, routing, links, and node dispatch.
//!
//! The simulator runs in one of three [`ExecMode`]s. `Serial` is the
//! original single-threaded loop and stays the default; `SerialDet`
//! runs the same loop under the partition-invariant ordering contract
//! (per-origin event keys, per-link RNG streams) and is the live oracle
//! for `Parallel`, the conservative PDES engine in [`crate::engine`].

use std::any::Any;
use std::net::Ipv4Addr;

use bytecache_packet::Packet;
use bytecache_telemetry::{Event as TelemetryEvent, EventKind, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fxhash::RouteMap;
use crate::link::{LinkConfig, LinkId, LinkState, TxVerdict};
use crate::node::{Action, Context, Node, NodeId};
use crate::partition::link_rng_seed;
use crate::stats::LinkStats;
use crate::time::{SimDuration, SimTime};
use crate::trace::{OwnedTraceEvent, TraceEvent, TraceSink};
use crate::wheel::{EventQueue, QueueKind, ScheduleOp};

/// Blanket helper granting `Any`-style downcasting to all nodes, so the
/// harness can inspect endpoint state (e.g. download statistics) after a
/// run via [`Simulator::node`].
pub trait AsAny {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// How [`Simulator::run_until_idle`] executes the event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The original single-threaded loop: one global event queue with a
    /// global insertion-order tie-break and one global channel RNG.
    /// This is the default and is byte-identical to the historical
    /// behaviour of the crate.
    Serial,
    /// The serial loop under the partition-invariant ordering contract:
    /// same-time events are ordered by `(origin node, per-origin seq)`
    /// instead of global insertion order, and every link draws channel
    /// randomness from its own seeded stream instead of the global RNG.
    /// Results are independent of how nodes would be partitioned, which
    /// makes this mode the live oracle for [`ExecMode::Parallel`].
    SerialDet,
    /// Conservative parallel discrete-event simulation across `workers`
    /// threads, under the same ordering contract as
    /// [`ExecMode::SerialDet`] — output is byte-identical to it at any
    /// worker count and for any partition.
    Parallel {
        /// Number of worker threads (clamped to the node count).
        workers: usize,
    },
}

/// Origin tag for environment-scheduled events (route changes), sorting
/// after all node origins at equal timestamps.
pub(crate) const ENV_ORIGIN: u64 = u64::MAX;

/// Ordering key for replayed trace/telemetry events in the
/// deterministic modes: `(phase, processing-event key, emission index)`
/// where phase 0 is the start sweep (`on_start`, node-id order) and
/// phase 1 is event processing. The deterministic modes buffer these
/// emissions and flush them sorted at the end of each run call, so the
/// serial oracle and the parallel engine produce the same sequence
/// regardless of partitioning or heap-insertion anomalies (a zero-delay
/// event can be created *below* the currently-processed key).
pub(crate) type ReplayKey = (u8, EventKey, u32);

/// Total order on events: time, then origin, then per-origin sequence.
///
/// In legacy [`ExecMode::Serial`], `origin` holds the global insertion
/// seq and `seq` is 0, reproducing the historical `(at, seq)` order
/// exactly. In the deterministic modes `origin` is the creating node's
/// index ([`ENV_ORIGIN`] for pre-scheduled environment events) and
/// `seq` a per-origin counter — a key both the serial oracle and every
/// PDES worker can compute identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EventKey {
    pub(crate) at: SimTime,
    pub(crate) origin: u64,
    pub(crate) seq: u64,
}

#[derive(Debug)]
pub(crate) enum Event {
    Deliver {
        to: NodeId,
        packet: Packet,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    RouteChange {
        node: NodeId,
        dst: Ipv4Addr,
        next: Option<NodeId>,
    },
}

pub(crate) struct Queued {
    pub(crate) key: EventKey,
    pub(crate) event: Event,
}

// The queued-event record is the unit the scheduler moves around; keep
// it within two cache lines. `Deliver` — the overwhelmingly common
// variant — embeds the 80-byte `Packet` inline on purpose: boxing it
// would shave bytes here but add an allocation plus a pointer chase to
// every delivery, the exact costs the event pool exists to avoid. The
// rare variants (`Timer`, `RouteChange`) are already small. These
// assertions fail the build if `Packet` or a new variant grows the
// record past that budget.
const _: () = {
    assert!(std::mem::size_of::<EventKey>() == 24);
    assert!(std::mem::size_of::<Event>() <= 96);
    assert!(std::mem::size_of::<Queued>() <= 120);
};

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The discrete-event simulator.
///
/// Construct with a seed, add nodes/links/routes, then run. See the
/// [crate docs](crate) for the model and an end-to-end example in the
/// `bytecache-experiments` crate.
pub struct Simulator {
    pub(crate) now: SimTime,
    /// Global insertion counter (legacy serial tie-break).
    pub(crate) seq: u64,
    /// Per-node event-creation counters (deterministic modes).
    pub(crate) origin_seqs: Vec<u64>,
    /// Environment event counter (deterministic modes).
    pub(crate) env_seq: u64,
    pub(crate) mode: ExecMode,
    pub(crate) seed: u64,
    pub(crate) partition: Option<Vec<usize>>,
    pub(crate) queue: EventQueue,
    pub(crate) nodes: Vec<Box<dyn SimNode>>,
    pub(crate) links: Vec<LinkState>,
    /// Per-node outgoing adjacency: `out_links[from]` lists
    /// `(to, link)` pairs sorted by `to`. Node ids are dense small
    /// integers, so this replaces the per-dispatch `HashMap` lookup
    /// with an indexed load plus a binary search — O(1) for the usual
    /// one- or two-entry list, O(log degree) for gateway hubs with
    /// hundreds of adjacent nodes.
    pub(crate) out_links: Vec<Vec<(NodeId, LinkId)>>,
    pub(crate) routes: Vec<RouteMap>,
    pub(crate) rng: StdRng,
    pub(crate) no_route_drops: u64,
    pub(crate) trace: Option<Box<dyn TraceSink>>,
    pub(crate) telemetry: Recorder,
    pub(crate) started: bool,
    pub(crate) event_budget: u64,
    pub(crate) events_processed: u64,
    /// Buffered trace events awaiting the deterministic flush
    /// (deterministic modes only; legacy serial emits inline).
    pub(crate) det_traces: Vec<(ReplayKey, OwnedTraceEvent)>,
    /// Buffered telemetry ring events awaiting the deterministic flush.
    pub(crate) det_tevents: Vec<(ReplayKey, TelemetryEvent)>,
    /// Reused buffer for node-emitted actions: one dispatch at a time
    /// runs, so a single scratch vector avoids an allocation per event.
    action_scratch: Vec<Action>,
    /// When present, every global-queue push/pop is appended here (see
    /// [`Simulator::record_schedule`]).
    schedule_log: Option<Vec<ScheduleOp>>,
    /// Replay-key base of whatever is currently executing.
    cur_phase: u8,
    cur_key: EventKey,
    emit_trace: u32,
    emit_tele: u32,
}

/// Object-safe supertrait combining [`Node`], downcasting and `Send`
/// (nodes migrate to worker threads during a parallel run).
pub(crate) trait SimNode: Node + AsAny + Send {}
impl<T: Node + AsAny + Send> SimNode for T {}

impl Simulator {
    /// New simulator; all channel randomness derives from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            origin_seqs: Vec::new(),
            env_seq: 0,
            mode: ExecMode::Serial,
            seed,
            partition: None,
            queue: EventQueue::new(QueueKind::default()),
            nodes: Vec::new(),
            links: Vec::new(),
            out_links: Vec::new(),
            routes: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            no_route_drops: 0,
            trace: None,
            telemetry: Recorder::disabled(),
            started: false,
            event_budget: 200_000_000,
            events_processed: 0,
            det_traces: Vec::new(),
            det_tevents: Vec::new(),
            action_scratch: Vec::new(),
            schedule_log: None,
            cur_phase: 0,
            cur_key: EventKey {
                at: SimTime::ZERO,
                origin: 0,
                seq: 0,
            },
            emit_trace: 0,
            emit_tele: 0,
        }
    }

    /// Select the execution mode. Must be called before any event is
    /// scheduled (i.e. before the first run and before
    /// [`schedule_route_change`](Self::schedule_route_change)), because
    /// the mode fixes how event keys are assigned.
    ///
    /// # Panics
    ///
    /// Panics if events have already been scheduled or the simulation
    /// has started, or if `Parallel { workers: 0 }` is requested.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        assert!(
            !self.started && self.queue.is_empty() && self.seq == 0 && self.env_seq == 0,
            "set_exec_mode must be called before any event is scheduled"
        );
        if let ExecMode::Parallel { workers } = mode {
            assert!(workers >= 1, "Parallel mode needs at least one worker");
        }
        self.mode = mode;
    }

    /// The current execution mode.
    #[must_use]
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// Select the event-queue implementation (default
    /// [`QueueKind::Wheel`]). Like [`set_exec_mode`](Self::set_exec_mode)
    /// this must happen before any event is scheduled — the knob swaps
    /// the queue out, which is only sound while it is empty. Both kinds
    /// produce byte-identical runs; [`QueueKind::Heap`] is the original
    /// `BinaryHeap` kept as the live oracle.
    ///
    /// # Panics
    ///
    /// Panics if events have already been scheduled or the simulation
    /// has started.
    pub fn set_queue_kind(&mut self, kind: QueueKind) {
        assert!(
            !self.started && self.queue.is_empty() && self.seq == 0 && self.env_seq == 0,
            "set_queue_kind must be called before any event is scheduled"
        );
        self.queue = EventQueue::new(kind);
    }

    /// The current event-queue implementation.
    #[must_use]
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Start recording every global-queue push and pop as a
    /// [`ScheduleOp`] sequence (replacing any previous recording).
    ///
    /// The recorded schedule replays through
    /// [`replay_schedule`](crate::replay_schedule) to benchmark a queue
    /// kind in isolation on this exact workload. Recording covers the
    /// serial engines' single global queue; a parallel run's per-worker
    /// queues are not captured.
    pub fn record_schedule(&mut self) {
        self.schedule_log = Some(Vec::new());
    }

    /// Stop recording and return the captured schedule (empty if
    /// [`record_schedule`](Self::record_schedule) was never called).
    pub fn take_schedule(&mut self) -> Vec<ScheduleOp> {
        self.schedule_log.take().unwrap_or_default()
    }

    /// Override the node → worker assignment used by
    /// [`ExecMode::Parallel`] (by default nodes are split into
    /// contiguous blocks). `assignment[i]` is the worker index of node
    /// `i`; it must cover every node with values `< workers` by the
    /// time the simulation runs. The deterministic ordering contract
    /// guarantees the partition does not change any output — this knob
    /// exists for load balancing and for the equivalence tests.
    pub fn set_partition(&mut self, assignment: Vec<usize>) {
        self.partition = Some(assignment);
    }

    /// Install a node; returns its id.
    pub fn add_node(&mut self, node: impl Node + Any + Send) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Box::new(node));
        self.routes.push(RouteMap::default());
        self.origin_seqs.push(0);
        self.out_links.push(Vec::new());
        id
    }

    /// Install a unidirectional link `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if a link already exists in that direction or either node
    /// id is unknown.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, config: LinkConfig) -> LinkId {
        assert!(from.0 < self.nodes.len(), "unknown node {from}");
        assert!(to.0 < self.nodes.len(), "unknown node {to}");
        let adj = &mut self.out_links[from.0];
        let pos = match adj.binary_search_by_key(&to.0, |&(t, _)| t.0) {
            Ok(_) => panic!("duplicate link {from} -> {to}"),
            Err(pos) => pos,
        };
        let id = LinkId(self.links.len());
        self.links.push(LinkState::new(config));
        adj.insert(pos, (to, id));
        id
    }

    /// Install a pair of links `a → b` and `b → a` with the same
    /// configuration (channel state is independent per direction).
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        config: LinkConfig,
    ) -> (LinkId, LinkId) {
        (
            self.add_link(a, b, config.clone()),
            self.add_link(b, a, config),
        )
    }

    /// Add (or replace) a route: at `node`, packets destined to `dst`
    /// are transmitted to `next_hop`.
    pub fn add_route(&mut self, node: NodeId, dst: Ipv4Addr, next_hop: NodeId) {
        self.routes[node.0].insert(dst, next_hop);
    }

    /// Remove a route; packets to `dst` at `node` are then dropped (and
    /// counted in [`no_route_drops`](Self::no_route_drops)).
    pub fn remove_route(&mut self, node: NodeId, dst: Ipv4Addr) {
        self.routes[node.0].remove(&dst);
    }

    /// The currently installed next hop at `node` for `dst`, if any —
    /// reflects scheduled route changes that have already applied.
    #[must_use]
    pub fn route(&self, node: NodeId, dst: Ipv4Addr) -> Option<NodeId> {
        self.routes[node.0].get(&dst).copied()
    }

    /// Schedule a route change at an absolute time (the mobility
    /// handoff primitive). `next = None` removes the route.
    pub fn schedule_route_change(
        &mut self,
        at: SimTime,
        node: NodeId,
        dst: Ipv4Addr,
        next: Option<NodeId>,
    ) {
        self.push_from(at, None, Event::RouteChange { node, dst, next });
    }

    /// Install a trace sink receiving every notable event.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Enable or disable the simulator's own telemetry recorder (queue
    /// depth and per-hop latency histograms, channel-drop events).
    /// Disabled by default; when off, instrumentation is a single branch
    /// per event.
    pub fn set_telemetry_enabled(&mut self, enabled: bool) {
        self.telemetry.set_enabled(enabled);
    }

    /// Borrow the simulator's telemetry recorder.
    #[must_use]
    pub fn telemetry(&self) -> &Recorder {
        &self.telemetry
    }

    /// Snapshot of the simulator's telemetry (empty-disabled when
    /// telemetry is off). Adds the `sim.events_processed` and
    /// `sim.no_route_drops` counters on top of the live series.
    #[must_use]
    pub fn telemetry_snapshot(&self) -> Recorder {
        if !self.telemetry.is_enabled() {
            return Recorder::disabled();
        }
        let mut snap = self.telemetry.clone();
        snap.count("sim.events_processed", self.events_processed);
        snap.count("sim.no_route_drops", self.no_route_drops);
        snap
    }

    /// Abort the run (panic) if more than `budget` events are processed —
    /// a guard against accidental infinite protocol loops. Enforced in
    /// every execution mode, including the parallel engine.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Packets discarded because the emitting node had no route.
    #[must_use]
    pub fn no_route_drops(&self) -> u64 {
        self.no_route_drops
    }

    /// Total events processed so far (across all run calls and, in
    /// parallel mode, all workers).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Traffic counters of a link.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    #[must_use]
    pub fn link_stats(&self, link: LinkId) -> &LinkStats {
        &self.links[link.0].stats
    }

    /// Borrow a node downcast to its concrete type.
    ///
    /// Returns `None` if the node is not a `T`.
    #[must_use]
    pub fn node<T: Any>(&self, id: NodeId) -> Option<&T> {
        // Deref through the Box so the call dispatches on `dyn SimNode`
        // (the blanket AsAny impl would otherwise match the Box itself).
        (*self.nodes[id.0]).as_any().downcast_ref::<T>()
    }

    /// Mutably borrow a node downcast to its concrete type.
    #[must_use]
    pub fn node_mut<T: Any>(&mut self, id: NodeId) -> Option<&mut T> {
        (*self.nodes[id.0]).as_any_mut().downcast_mut::<T>()
    }

    /// Assign the next event key for an event created by `origin`
    /// (`None` = environment) at time `at`, respecting the mode's
    /// ordering contract.
    pub(crate) fn next_key(&mut self, at: SimTime, origin: Option<NodeId>) -> EventKey {
        match self.mode {
            ExecMode::Serial => {
                let seq = self.seq;
                self.seq += 1;
                EventKey {
                    at,
                    origin: seq,
                    seq: 0,
                }
            }
            ExecMode::SerialDet | ExecMode::Parallel { .. } => match origin {
                Some(node) => {
                    let counter = &mut self.origin_seqs[node.0];
                    let seq = *counter;
                    *counter += 1;
                    EventKey {
                        at,
                        origin: node.0 as u64,
                        seq,
                    }
                }
                None => {
                    let seq = self.env_seq;
                    self.env_seq += 1;
                    EventKey {
                        at,
                        origin: ENV_ORIGIN,
                        seq,
                    }
                }
            },
        }
    }

    fn push_from(&mut self, at: SimTime, origin: Option<NodeId>, event: Event) {
        let key = self.next_key(at, origin);
        if let Some(log) = &mut self.schedule_log {
            log.push(ScheduleOp::Push(at.as_micros()));
        }
        self.queue.push(Queued { key, event });
    }

    /// Seed the per-link RNG streams (deterministic modes only; legacy
    /// serial keeps drawing from the global RNG).
    fn ensure_link_rngs(&mut self) {
        if matches!(self.mode, ExecMode::Serial) {
            return;
        }
        for (i, link) in self.links.iter_mut().enumerate() {
            if link.rng.is_none() {
                link.rng = Some(StdRng::seed_from_u64(link_rng_seed(self.seed, i)));
            }
        }
    }

    pub(crate) fn start_if_needed(&mut self) {
        self.ensure_link_rngs();
        if self.started {
            return;
        }
        self.started = true;
        let mut actions = Vec::new();
        for i in 0..self.nodes.len() {
            let node = NodeId(i);
            self.cur_phase = 0;
            self.cur_key = EventKey {
                at: self.now,
                origin: i as u64,
                seq: 0,
            };
            self.emit_trace = 0;
            self.emit_tele = 0;
            let mut ctx = Context {
                now: self.now,
                node,
                actions: &mut actions,
            };
            self.nodes[i].on_start(&mut ctx);
            self.apply_actions(node, &mut actions);
        }
    }

    /// Whether trace/telemetry events are buffered for the
    /// deterministic sorted flush instead of emitted inline.
    fn det_replay(&self) -> bool {
        !matches!(self.mode, ExecMode::Serial)
    }

    fn log_det_trace(&mut self, ev: OwnedTraceEvent) {
        self.det_traces
            .push(((self.cur_phase, self.cur_key, self.emit_trace), ev));
        self.emit_trace += 1;
    }

    fn log_det_tevent(&mut self, ev: TelemetryEvent) {
        self.det_tevents
            .push(((self.cur_phase, self.cur_key, self.emit_tele), ev));
        self.emit_tele += 1;
    }

    /// Flush buffered trace/telemetry events in canonical order. Called
    /// at the end of every run segment in the deterministic modes (a
    /// no-op in legacy serial, where the buffers stay empty).
    pub(crate) fn flush_det_logs(&mut self) {
        if !self.det_tevents.is_empty() {
            self.det_tevents.sort_unstable_by_key(|e| e.0);
            for (_, ev) in std::mem::take(&mut self.det_tevents) {
                self.telemetry.event(ev);
            }
        }
        if !self.det_traces.is_empty() {
            self.det_traces.sort_unstable_by_key(|e| e.0);
            let traces = std::mem::take(&mut self.det_traces);
            if let Some(sink) = self.trace.as_mut() {
                for (_, tr) in &traces {
                    tr.replay(&mut **sink);
                }
            }
        }
    }

    fn apply_actions(&mut self, node: NodeId, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Forward(packet) => self.route_and_transmit(node, packet),
                Action::Timer(delay, token) => {
                    self.push_from(self.now + delay, Some(node), Event::Timer { node, token });
                }
            }
        }
    }

    fn route_and_transmit(&mut self, from: NodeId, packet: Packet) {
        let Some(&next) = self.routes[from.0].get(&packet.ip.dst) else {
            self.no_route_drops += 1;
            if self.telemetry.is_enabled() {
                let ev = TelemetryEvent::new(EventKind::NoRoute)
                    .at_us(self.now.as_micros())
                    .flow(packet.flow().stable_hash())
                    .details(from.0 as u64, 0);
                if self.det_replay() {
                    self.log_det_tevent(ev);
                } else {
                    self.telemetry.event(ev);
                }
            }
            if self.trace.is_some() {
                if self.det_replay() {
                    self.log_det_trace(OwnedTraceEvent::NoRoute {
                        at: self.now,
                        from,
                        packet: packet.clone(),
                    });
                } else if let Some(t) = self.trace.as_mut() {
                    t.event(&TraceEvent::NoRoute {
                        at: self.now,
                        from,
                        packet: &packet,
                    });
                }
            }
            return;
        };
        debug_assert!(from.0 < self.out_links.len(), "node id out of bounds");
        let adj = &self.out_links[from.0];
        let link_id = adj
            .binary_search_by_key(&next.0, |&(t, _)| t.0)
            .map(|pos| adj[pos].1)
            .unwrap_or_else(|_| panic!("route {from} -> {next} without a link"));
        let wire = packet.wire_len();
        if self.telemetry.is_enabled() {
            self.telemetry.count("sim.transmits", 1);
        }
        if self.trace.is_some() {
            if self.det_replay() {
                self.log_det_trace(OwnedTraceEvent::Transmit {
                    at: self.now,
                    from,
                    to: next,
                    packet: packet.clone(),
                });
            } else if let Some(t) = self.trace.as_mut() {
                t.event(&TraceEvent::Transmit {
                    at: self.now,
                    from,
                    to: next,
                    packet: &packet,
                });
            }
        }
        let verdict = self.links[link_id.0].transmit(self.now, wire, Some(&mut self.rng));
        match verdict {
            TxVerdict::Lost => {
                if self.telemetry.is_enabled() {
                    let ev = TelemetryEvent::new(EventKind::PacketLost)
                        .at_us(self.now.as_micros())
                        .flow(packet.flow().stable_hash())
                        .details(from.0 as u64, wire as u64);
                    if self.det_replay() {
                        self.log_det_tevent(ev);
                    } else {
                        self.telemetry.event(ev);
                    }
                }
                if self.trace.is_some() {
                    if self.det_replay() {
                        self.log_det_trace(OwnedTraceEvent::Lost {
                            at: self.now,
                            from,
                            to: next,
                            packet,
                        });
                    } else if let Some(t) = self.trace.as_mut() {
                        t.event(&TraceEvent::Lost {
                            at: self.now,
                            from,
                            to: next,
                            packet: &packet,
                        });
                    }
                }
            }
            TxVerdict::Corrupted => {
                // A corrupted packet is delivered on the wire but fails
                // the IP/TCP (or byte caching shim) checksum at the
                // receiver, which discards it. Both outcomes are a drop;
                // we account it separately and do not dispatch it.
                if self.telemetry.is_enabled() {
                    let ev = TelemetryEvent::new(EventKind::PacketCorrupted)
                        .at_us(self.now.as_micros())
                        .flow(packet.flow().stable_hash())
                        .details(from.0 as u64, wire as u64);
                    if self.det_replay() {
                        self.log_det_tevent(ev);
                    } else {
                        self.telemetry.event(ev);
                    }
                }
                if self.trace.is_some() {
                    if self.det_replay() {
                        self.log_det_trace(OwnedTraceEvent::Corrupted {
                            at: self.now,
                            from,
                            to: next,
                            packet,
                        });
                    } else if let Some(t) = self.trace.as_mut() {
                        t.event(&TraceEvent::Corrupted {
                            at: self.now,
                            from,
                            to: next,
                            packet: &packet,
                        });
                    }
                }
            }
            TxVerdict::Deliver { arrive } | TxVerdict::Reorder { arrive } => {
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .record("sim.hop_latency_us", (arrive - self.now).as_micros());
                }
                self.push_from(arrive, Some(from), Event::Deliver { to: next, packet });
            }
            TxVerdict::Duplicate { arrive, copy } => {
                // The original arrives on time; a copy follows later.
                // Only the original counts as delivered payload — the
                // copy is channel noise the receiver must tolerate. The
                // copy is scheduled first (historical insertion order).
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .record("sim.hop_latency_us", (arrive - self.now).as_micros());
                }
                self.push_from(
                    copy,
                    Some(from),
                    Event::Deliver {
                        to: next,
                        packet: packet.clone(),
                    },
                );
                self.push_from(arrive, Some(from), Event::Deliver { to: next, packet });
            }
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Deliver { to, packet } => {
                if self.telemetry.is_enabled() {
                    self.telemetry.count("sim.delivers", 1);
                }
                if self.trace.is_some() {
                    if self.det_replay() {
                        self.log_det_trace(OwnedTraceEvent::Deliver {
                            at: self.now,
                            to,
                            packet: packet.clone(),
                        });
                    } else if let Some(t) = self.trace.as_mut() {
                        t.event(&TraceEvent::Deliver {
                            at: self.now,
                            to,
                            packet: &packet,
                        });
                    }
                }
                let mut actions = std::mem::take(&mut self.action_scratch);
                let mut ctx = Context {
                    now: self.now,
                    node: to,
                    actions: &mut actions,
                };
                self.nodes[to.0].on_packet(packet, &mut ctx);
                self.apply_actions(to, &mut actions);
                self.action_scratch = actions;
            }
            Event::Timer { node, token } => {
                let mut actions = std::mem::take(&mut self.action_scratch);
                let mut ctx = Context {
                    now: self.now,
                    node,
                    actions: &mut actions,
                };
                self.nodes[node.0].on_timer(token, &mut ctx);
                self.apply_actions(node, &mut actions);
                self.action_scratch = actions;
            }
            Event::RouteChange { node, dst, next } => match next {
                Some(n) => self.add_route(node, dst, n),
                None => self.remove_route(node, dst),
            },
        }
    }

    fn step(&mut self) -> bool {
        let Some(q) = self.queue.pop() else {
            return false;
        };
        if let Some(log) = &mut self.schedule_log {
            log.push(ScheduleOp::Pop);
        }
        debug_assert!(q.key.at >= self.now, "time went backwards");
        self.now = q.key.at;
        self.cur_phase = 1;
        self.cur_key = q.key;
        self.emit_trace = 0;
        self.emit_tele = 0;
        self.events_processed += 1;
        // Queue depth is an engine-internal observable of the single
        // global queue; the deterministic modes skip it so serial and
        // parallel snapshots stay byte-identical.
        if self.telemetry.is_enabled() && matches!(self.mode, ExecMode::Serial) {
            self.telemetry
                .record("sim.queue_depth", self.queue.len() as u64);
        }
        assert!(
            self.events_processed <= self.event_budget,
            "event budget exhausted ({} events): likely a protocol loop",
            self.event_budget
        );
        self.dispatch(q.event);
        true
    }

    /// The serial loop body, shared by `Serial`, `SerialDet` and the
    /// degenerate parallel cases (one worker, zero lookahead).
    pub(crate) fn run_serial(&mut self, limit: Option<SimTime>) -> SimTime {
        self.start_if_needed();
        match limit {
            None => while self.step() {},
            Some(t) => {
                while let Some(head) = self.queue.peek_key() {
                    if head.at > t {
                        break;
                    }
                    self.step();
                }
                self.now = self.now.max(t);
            }
        }
        self.flush_det_logs();
        self.now
    }

    /// Run until no events remain; returns the final simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the event budget is exhausted (see
    /// [`set_event_budget`](Self::set_event_budget)).
    pub fn run_until_idle(&mut self) -> SimTime {
        if let ExecMode::Parallel { workers } = self.mode {
            return crate::engine::run(self, workers, None);
        }
        self.run_serial(None)
    }

    /// Run until the given absolute time (events at exactly `t` are
    /// processed); later events stay queued.
    pub fn run_until(&mut self, t: SimTime) -> SimTime {
        if let ExecMode::Parallel { workers } = self.mode {
            return crate::engine::run(self, workers, Some(t));
        }
        self.run_serial(Some(t))
    }

    /// Run for a span of simulated time from now.
    pub fn run_for(&mut self, d: SimDuration) -> SimTime {
        let target = self.now + d;
        self.run_until(target)
    }
}

impl core::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("mode", &self.mode)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("queued", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelConfig;
    use crate::FnTrace;
    use bytecache_packet::TcpFlags;
    use std::cell::RefCell;
    use std::net::Ipv4Addr;
    use std::rc::Rc;

    const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn pkt(src: Ipv4Addr, dst: Ipv4Addr, len: usize) -> Packet {
        Packet::builder()
            .src(src, 1)
            .dst(dst, 2)
            .flags(TcpFlags::ACK)
            .payload(vec![0xAB; len])
            .build()
    }

    /// Sends `count` packets at start; records arrival times of replies.
    struct Sender {
        dst: Ipv4Addr,
        src: Ipv4Addr,
        count: usize,
        len: usize,
    }
    impl Node for Sender {
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.count {
                ctx.forward(pkt(self.src, self.dst, self.len));
            }
        }
    }

    /// Records arrival times and payload sizes.
    #[derive(Default)]
    struct Receiver {
        arrivals: Vec<(SimTime, usize)>,
    }
    impl Node for Receiver {
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            self.arrivals.push((ctx.now(), p.payload.len()));
        }
    }

    /// Echoes every packet back to its source.
    struct Echo;
    impl Node for Echo {
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            let reply = Packet::builder()
                .src(p.ip.dst, p.tcp.dst_port)
                .dst(p.ip.src, p.tcp.src_port)
                .flags(TcpFlags::ACK)
                .payload(p.payload.clone())
                .build();
            ctx.forward(reply);
        }
    }

    #[test]
    fn packets_flow_and_arrive_after_prop_delay() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 1,
            len: 100,
        });
        let b = sim.add_node(Receiver::default());
        sim.add_link(
            a,
            b,
            LinkConfig {
                rate_bytes_per_sec: None,
                propagation: SimDuration::from_millis(5),
                channel: ChannelConfig::clean(),
            },
        );
        sim.add_route(a, B_IP, b);
        sim.run_until_idle();
        let rx = sim.node::<Receiver>(b).unwrap();
        assert_eq!(rx.arrivals.len(), 1);
        assert_eq!(rx.arrivals[0].0.as_micros(), 5_000);
        assert_eq!(rx.arrivals[0].1, 100);
    }

    #[test]
    fn rate_limit_spaces_arrivals_by_serialization_time() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 3,
            len: 960, // wire = 1000 bytes
        });
        let b = sim.add_node(Receiver::default());
        sim.add_link(
            a,
            b,
            LinkConfig {
                rate_bytes_per_sec: Some(1_000_000), // 1000 bytes = 1 ms
                propagation: SimDuration::from_millis(2),
                channel: ChannelConfig::clean(),
            },
        );
        sim.add_route(a, B_IP, b);
        sim.run_until_idle();
        let rx = sim.node::<Receiver>(b).unwrap();
        let times: Vec<u64> = rx.arrivals.iter().map(|(t, _)| t.as_micros()).collect();
        assert_eq!(times, vec![3_000, 4_000, 5_000]);
    }

    #[test]
    fn echo_round_trip() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 1,
            len: 10,
        });
        let b = sim.add_node(Echo);
        let c = sim.add_node(Receiver::default());
        // a -> b, b -> c (replies to A_IP are routed to the receiver node
        // to observe them).
        sim.add_duplex_link(a, b, LinkConfig::default());
        sim.add_link(b, c, LinkConfig::default());
        sim.add_route(a, B_IP, b);
        sim.add_route(b, A_IP, c);
        sim.run_until_idle();
        assert_eq!(sim.node::<Receiver>(c).unwrap().arrivals.len(), 1);
    }

    #[test]
    fn loss_counted_and_not_delivered() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 2000,
            len: 10,
        });
        let b = sim.add_node(Receiver::default());
        let l = sim.add_link(
            a,
            b,
            LinkConfig {
                rate_bytes_per_sec: None,
                propagation: SimDuration::from_millis(1),
                channel: ChannelConfig::lossy(0.25),
            },
        );
        sim.add_route(a, B_IP, b);
        sim.run_until_idle();
        let stats = sim.link_stats(l).clone();
        assert_eq!(stats.packets_offered, 2000);
        assert!(stats.packets_lost > 400 && stats.packets_lost < 600);
        let rx = sim.node::<Receiver>(b).unwrap();
        assert_eq!(rx.arrivals.len() as u64, stats.packets_delivered);
    }

    #[test]
    fn no_route_is_counted() {
        let mut sim = Simulator::new(1);
        let _a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 4,
            len: 10,
        });
        sim.run_until_idle();
        assert_eq!(sim.no_route_drops(), 4);
    }

    /// A sender driven by repeated timers (packets stay in flight when
    /// the route flips).
    struct SlowSender;
    impl Node for SlowSender {
        fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
            ctx.forward(pkt(A_IP, B_IP, 10));
            if token < 9 {
                ctx.set_timer(SimDuration::from_millis(10), token + 1);
            }
        }
    }

    fn route_change_sim(mode: ExecMode) -> Simulator {
        let mut sim = Simulator::new(1);
        sim.set_exec_mode(mode);
        let a = sim.add_node(SlowSender);
        let b1 = sim.add_node(Receiver::default());
        let b2 = sim.add_node(Receiver::default());
        sim.add_link(a, b1, LinkConfig::default());
        sim.add_link(a, b2, LinkConfig::default());
        sim.add_route(a, B_IP, b1);
        // After 45 ms (between packet 5 and 6), hand off to b2.
        sim.schedule_route_change(SimTime::from_micros(45_000), a, B_IP, Some(b2));
        sim
    }

    #[test]
    fn scheduled_route_change_redirects_traffic() {
        let mut sim = route_change_sim(ExecMode::Serial);
        sim.run_until_idle();
        assert_eq!(sim.node::<Receiver>(NodeId(1)).unwrap().arrivals.len(), 5);
        assert_eq!(sim.node::<Receiver>(NodeId(2)).unwrap().arrivals.len(), 5);
    }

    /// Satellite: `schedule_route_change` interleaved with in-flight
    /// deliveries behaves identically in the serial oracle and the
    /// PDES engine (the flip lands between two deliveries while the
    /// previous packet is still propagating).
    #[test]
    fn route_flip_mid_flight_matches_across_engines() {
        let arrivals = |mode| {
            let mut sim = route_change_sim(mode);
            sim.run_until_idle();
            (
                sim.node::<Receiver>(NodeId(1)).unwrap().arrivals.clone(),
                sim.node::<Receiver>(NodeId(2)).unwrap().arrivals.clone(),
                sim.now(),
            )
        };
        let oracle = arrivals(ExecMode::SerialDet);
        assert_eq!(oracle.0.len(), 5);
        assert_eq!(oracle.1.len(), 5);
        for workers in [1, 2, 3] {
            assert_eq!(
                arrivals(ExecMode::Parallel { workers }),
                oracle,
                "route flip diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        #[derive(Default)]
        struct TimerNode {
            fired: Vec<(u64, SimTime)>,
        }
        impl Node for TimerNode {
            fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(5), 2);
                ctx.set_timer(SimDuration::from_millis(1), 1);
            }
            fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
                self.fired.push((token, ctx.now()));
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node(TimerNode::default());
        sim.run_until_idle();
        let node = sim.node::<TimerNode>(n).unwrap();
        assert_eq!(node.fired.len(), 2);
        assert_eq!(node.fired[0].0, 1);
        assert_eq!(node.fired[1].0, 2);
        assert_eq!(node.fired[1].1.as_micros(), 5_000);
    }

    #[test]
    fn run_until_stops_at_time() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 1,
            len: 10,
        });
        let b = sim.add_node(Receiver::default());
        sim.add_link(
            a,
            b,
            LinkConfig {
                rate_bytes_per_sec: None,
                propagation: SimDuration::from_millis(10),
                channel: ChannelConfig::clean(),
            },
        );
        sim.add_route(a, B_IP, b);
        sim.run_until(SimTime::from_micros(5_000));
        assert_eq!(sim.node::<Receiver>(b).unwrap().arrivals.len(), 0);
        sim.run_until_idle();
        assert_eq!(sim.node::<Receiver>(b).unwrap().arrivals.len(), 1);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node(Sender {
                src: A_IP,
                dst: B_IP,
                count: 500,
                len: 100,
            });
            let b = sim.add_node(Receiver::default());
            let l = sim.add_link(
                a,
                b,
                LinkConfig {
                    rate_bytes_per_sec: Some(1_000_000),
                    propagation: SimDuration::from_millis(3),
                    channel: ChannelConfig::lossy(0.1),
                },
            );
            sim.add_route(a, B_IP, b);
            sim.run_until_idle();
            (
                sim.link_stats(l).clone(),
                sim.node::<Receiver>(b).unwrap().arrivals.len(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0.packets_lost, run(8).0.packets_lost);
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn event_budget_catches_loops() {
        struct Looper;
        impl Node for Looper {
            fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_micros(1), 0);
            }
            fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_micros(1), 0);
            }
        }
        let mut sim = Simulator::new(1);
        sim.add_node(Looper);
        sim.set_event_budget(1000);
        sim.run_until_idle();
    }

    /// A node that answers every packet with another packet — two of
    /// them bounce forever.
    struct PingPong {
        peer: Ipv4Addr,
        me: Ipv4Addr,
        serve: bool,
    }
    impl Node for PingPong {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if self.serve {
                ctx.forward(pkt(self.me, self.peer, 10));
            }
        }
        fn on_packet(&mut self, _p: Packet, ctx: &mut Context<'_>) {
            ctx.forward(pkt(self.me, self.peer, 10));
        }
    }

    fn ping_pong_sim(mode: ExecMode) -> Simulator {
        let mut sim = Simulator::new(1);
        sim.set_exec_mode(mode);
        let a = sim.add_node(PingPong {
            peer: B_IP,
            me: A_IP,
            serve: true,
        });
        let b = sim.add_node(PingPong {
            peer: A_IP,
            me: B_IP,
            serve: false,
        });
        sim.add_duplex_link(a, b, LinkConfig::default());
        sim.add_route(a, B_IP, b);
        sim.add_route(b, A_IP, a);
        sim.set_event_budget(1000);
        sim
    }

    /// Satellite: a runaway two-node ping-pong halts under the event
    /// budget in the serial engine.
    #[test]
    #[should_panic(expected = "event budget")]
    fn event_budget_halts_ping_pong_serial() {
        ping_pong_sim(ExecMode::Serial).run_until_idle();
    }

    /// Satellite: the same runaway ping-pong halts under the budget in
    /// the PDES engine too (the panic crosses the worker threads).
    #[test]
    #[should_panic(expected = "event budget")]
    fn event_budget_halts_ping_pong_parallel() {
        ping_pong_sim(ExecMode::Parallel { workers: 2 }).run_until_idle();
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_rejected() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Echo);
        let b = sim.add_node(Echo);
        sim.add_link(a, b, LinkConfig::default());
        sim.add_link(a, b, LinkConfig::default());
    }

    #[test]
    fn reordering_delivers_late() {
        let mut sim = Simulator::new(5);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 2000,
            len: 10,
        });
        let b = sim.add_node(Receiver::default());
        let l = sim.add_link(
            a,
            b,
            LinkConfig {
                rate_bytes_per_sec: Some(10_000_000),
                propagation: SimDuration::from_millis(1),
                channel: ChannelConfig {
                    reorder_rate: 0.2,
                    reorder_window: SimDuration::from_millis(5),
                    ..ChannelConfig::clean()
                },
            },
        );
        sim.add_route(a, B_IP, b);
        sim.run_until_idle();
        let stats = sim.link_stats(l);
        assert!(stats.packets_reordered > 200);
        // All packets still arrive.
        assert_eq!(stats.packets_delivered, 2000);
        // Arrival times are NOT monotone in send order: find an inversion.
        let rx = sim.node::<Receiver>(b).unwrap();
        assert_eq!(rx.arrivals.len(), 2000);
    }

    #[test]
    fn duplicates_deliver_the_packet_twice() {
        let mut sim = Simulator::new(6);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 2000,
            len: 10,
        });
        let b = sim.add_node(Receiver::default());
        let l = sim.add_link(
            a,
            b,
            LinkConfig {
                rate_bytes_per_sec: Some(10_000_000),
                propagation: SimDuration::from_millis(1),
                channel: ChannelConfig {
                    duplicate_rate: 0.2,
                    ..ChannelConfig::clean()
                },
            },
        );
        sim.add_route(a, B_IP, b);
        sim.run_until_idle();
        let stats = sim.link_stats(l);
        assert!(stats.packets_duplicated > 200, "{stats:?}");
        // Only originals count as delivered; each duplicate arrives as
        // one extra packet at the receiver.
        assert_eq!(stats.packets_delivered, 2000);
        let rx = sim.node::<Receiver>(b).unwrap();
        assert_eq!(rx.arrivals.len() as u64, 2000 + stats.packets_duplicated);
    }

    // ---- deterministic ordering & PDES equivalence ---------------------

    /// Forwards one packet per timer; used to construct same-timestamp
    /// events whose creation order differs from node-id order.
    struct StagedSender {
        hops: u64,
        hop: SimDuration,
    }
    impl Node for StagedSender {
        fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(self.hop, 1);
        }
        fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
            if token < self.hops {
                ctx.set_timer(self.hop, token + 1);
            } else {
                ctx.forward(pkt(A_IP, B_IP, 10));
            }
        }
    }

    fn transmit_order(mode: ExecMode, kind: QueueKind) -> Vec<usize> {
        let order = Rc::new(RefCell::new(Vec::new()));
        let seen = Rc::clone(&order);
        let mut sim = Simulator::new(1);
        sim.set_exec_mode(mode);
        sim.set_queue_kind(kind);
        // Node 0 reaches its forward at 10 ms via two 5 ms timer hops
        // (its t=10ms timer is *created* at t=5ms); node 1 via a single
        // 10 ms timer created at t=0. Same firing timestamp, different
        // creation order.
        let a0 = sim.add_node(StagedSender {
            hops: 2,
            hop: SimDuration::from_millis(5),
        });
        let a1 = sim.add_node(StagedSender {
            hops: 1,
            hop: SimDuration::from_millis(10),
        });
        let c = sim.add_node(Receiver::default());
        sim.add_link(a0, c, LinkConfig::default());
        sim.add_link(a1, c, LinkConfig::default());
        sim.add_route(a0, B_IP, c);
        sim.add_route(a1, B_IP, c);
        sim.set_trace(Box::new(FnTrace(move |ev: &TraceEvent<'_>| {
            if let TraceEvent::Transmit { from, .. } = ev {
                seen.borrow_mut().push(from.index());
            }
        })));
        sim.run_until_idle();
        let got = order.borrow().clone();
        got
    }

    /// Satellite: the legacy serial queue breaks same-timestamp ties by
    /// global insertion `seq` — node 1's timer was scheduled first, so
    /// its forward pops first even though node 0 has the smaller id.
    /// This pins the behaviour the PDES contract deliberately replaces —
    /// and both queue kinds must reproduce it bit-for-bit.
    #[test]
    fn same_time_events_pop_in_seq_order() {
        assert_eq!(
            transmit_order(ExecMode::Serial, QueueKind::Wheel),
            vec![1, 0]
        );
        assert_eq!(
            transmit_order(ExecMode::Serial, QueueKind::Heap),
            vec![1, 0]
        );
    }

    /// The deterministic modes break the same tie by origin node id —
    /// identically at any worker count and on either queue kind.
    #[test]
    fn same_time_events_pop_in_origin_order_in_det_modes() {
        for kind in [QueueKind::Wheel, QueueKind::Heap] {
            assert_eq!(transmit_order(ExecMode::SerialDet, kind), vec![0, 1]);
            assert_eq!(
                transmit_order(ExecMode::Parallel { workers: 2 }, kind),
                vec![0, 1]
            );
            assert_eq!(
                transmit_order(ExecMode::Parallel { workers: 3 }, kind),
                vec![0, 1]
            );
        }
    }

    /// Full-state digest of a lossy echo topology for equivalence
    /// checks: arrivals, all link stats, clock, event count, telemetry.
    fn lossy_echo_digest(
        mode: ExecMode,
        partition: Option<Vec<usize>>,
    ) -> (
        Vec<(SimTime, usize)>,
        Vec<LinkStats>,
        SimTime,
        u64,
        Recorder,
    ) {
        let mut sim = Simulator::new(42);
        sim.set_exec_mode(mode);
        if let Some(p) = partition {
            sim.set_partition(p);
        }
        sim.set_telemetry_enabled(true);
        let a = sim.add_node(Sender {
            src: A_IP,
            dst: B_IP,
            count: 400,
            len: 100,
        });
        let b = sim.add_node(Echo);
        let c = sim.add_node(Receiver::default());
        let lossy = LinkConfig {
            rate_bytes_per_sec: Some(1_000_000),
            propagation: SimDuration::from_millis(2),
            channel: ChannelConfig {
                duplicate_rate: 0.02,
                reorder_rate: 0.05,
                reorder_window: SimDuration::from_millis(3),
                ..ChannelConfig::lossy(0.1)
            },
        };
        let (l0, l1) = sim.add_duplex_link(a, b, lossy);
        let l2 = sim.add_link(b, c, LinkConfig::default());
        sim.add_route(a, B_IP, b);
        sim.add_route(b, A_IP, c);
        sim.run_until_idle();
        (
            sim.node::<Receiver>(c).unwrap().arrivals.clone(),
            vec![
                sim.link_stats(l0).clone(),
                sim.link_stats(l1).clone(),
                sim.link_stats(l2).clone(),
            ],
            sim.now(),
            sim.events_processed,
            sim.telemetry_snapshot(),
        )
    }

    /// The PDES engine is byte-identical to the serial-det oracle at
    /// any worker count and for any partition of the nodes.
    #[test]
    fn pdes_matches_serial_det_oracle() {
        let oracle = lossy_echo_digest(ExecMode::SerialDet, None);
        assert!(!oracle.0.is_empty(), "test topology delivers packets");
        for workers in [1usize, 2, 3] {
            let got = lossy_echo_digest(ExecMode::Parallel { workers }, None);
            assert_eq!(got, oracle, "diverged at {workers} workers");
        }
        for partition in [vec![0, 1, 1], vec![0, 1, 0], vec![1, 0, 1]] {
            let got = lossy_echo_digest(ExecMode::Parallel { workers: 2 }, Some(partition.clone()));
            assert_eq!(got, oracle, "diverged with partition {partition:?}");
        }
    }

    /// Segmented runs (`run_until` then `run_until_idle`) round-trip
    /// all state through the workers and stay equivalent.
    #[test]
    fn pdes_run_until_segments_match_oracle() {
        let digest = |mode| {
            let mut sim = Simulator::new(9);
            sim.set_exec_mode(mode);
            let a = sim.add_node(Sender {
                src: A_IP,
                dst: B_IP,
                count: 300,
                len: 200,
            });
            let b = sim.add_node(Receiver::default());
            let l = sim.add_link(
                a,
                b,
                LinkConfig {
                    rate_bytes_per_sec: Some(1_000_000),
                    propagation: SimDuration::from_millis(4),
                    channel: ChannelConfig::lossy(0.15),
                },
            );
            sim.add_route(a, B_IP, b);
            let mid = sim.run_until(SimTime::from_micros(30_000));
            let mid_arrivals = sim.node::<Receiver>(b).unwrap().arrivals.len();
            sim.run_until_idle();
            (
                mid,
                mid_arrivals,
                sim.node::<Receiver>(b).unwrap().arrivals.clone(),
                sim.link_stats(l).clone(),
                sim.now(),
                sim.events_processed,
            )
        };
        let oracle = digest(ExecMode::SerialDet);
        assert!(oracle.1 > 0, "some packets arrive before the cut");
        assert!(oracle.2.len() > oracle.1, "more arrive after");
        for workers in [2usize, 3] {
            assert_eq!(
                digest(ExecMode::Parallel { workers }),
                oracle,
                "segmented run diverged at {workers} workers"
            );
        }
    }

    #[test]
    #[should_panic(expected = "before any event is scheduled")]
    fn exec_mode_locked_after_scheduling() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Echo);
        sim.schedule_route_change(SimTime::from_micros(10), a, B_IP, None);
        sim.set_exec_mode(ExecMode::SerialDet);
    }

    #[test]
    #[should_panic(expected = "before any event is scheduled")]
    fn queue_kind_locked_after_scheduling() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Echo);
        sim.schedule_route_change(SimTime::from_micros(10), a, B_IP, None);
        sim.set_queue_kind(QueueKind::Heap);
    }
}
