//! The hierarchical timing wheel behind [`QueueKind::Wheel`], plus the
//! [`EventQueue`] façade both engines schedule through.
//!
//! A `BinaryHeap` pays `O(log n)` per push/pop and one allocation per
//! queued event. The wheel makes the common case ~O(1): a calendar
//! queue of [`LEVELS`] levels × [`SLOTS`] slots (6 bits of the
//! microsecond timestamp per level), per-level occupancy bitmasks so
//! find-min is a `trailing_zeros`, and an [`EventPool`] slab that
//! recycles queued-event records instead of allocating per event.
//!
//! # Pop-order contract
//!
//! The wheel pops in exactly the heap's total order — the full
//! `(time, origin, seq)` [`EventKey`] — under arbitrary interleaving of
//! pushes and pops. Three auxiliary structures close the gaps a plain
//! wheel would leave (DESIGN.md §16 carries the argument in full):
//!
//! * **bucket** — all events at the frontier timestamp, kept as a tiny
//!   binary heap ordered by full key. Same-timestamp ties (including
//!   zero-delay self-events created *while* the timestamp is being
//!   drained, possibly with a lower `(origin, seq)` than events already
//!   popped-around) funnel through it in key order.
//! * **backlog** — a heap for the rare push strictly before the wheel
//!   frontier `cur` (a `schedule_route_change` between run segments
//!   after a peek advanced the frontier; a PDES cross-worker arrival
//!   below the local minimum). Pop compares backlog and bucket heads by
//!   full key, so strays still come out in global order.
//! * **overflow** — a heap for events beyond the wheel horizon
//!   (`2^42` µs ≈ 51 days from `cur`); when the wheel empties, the
//!   frontier jumps to the overflow minimum and every event sharing its
//!   high bits migrates into the wheel.
//!
//! Until the first pop/peek after the queue was (re-)emptied the wheel
//! is *unbased*: pushes collect in a staging list and the frontier is
//! fixed at the staged minimum on first use. This keeps arbitrary
//! push orders cheap at topology-build time and after the PDES engine
//! merges leftover events back.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::node::NodeId;
use crate::sim::{Event, EventKey, Queued};

/// Bits of the timestamp consumed per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per level (one occupancy `u64` per level).
pub(crate) const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; together they cover `2^(6*7) = 2^42` µs from `cur`.
pub(crate) const LEVELS: usize = 7;
/// Timestamp bits the wheel levels can represent relative to `cur`.
const HORIZON_BITS: u32 = SLOT_BITS * LEVELS as u32;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;

const NIL: u32 = u32::MAX;

/// Which event-queue implementation a [`Simulator`](crate::Simulator)
/// schedules through. Both produce byte-identical runs; the heap is the
/// original `BinaryHeap` kept as the live oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The original `BinaryHeap<Reverse<Queued>>`: `O(log n)` per
    /// operation, one allocation per queued event. Kept verbatim as the
    /// oracle the wheel is property-tested against.
    Heap,
    /// Hierarchical timing wheel over a recycling event pool: ~O(1)
    /// push/pop in the common case. The default.
    #[default]
    Wheel,
}

/// One pooled queued-event record. `next` chains the intrusive per-slot
/// FIFO lists and the free list.
struct PoolSlot {
    key: EventKey,
    event: Event,
    next: u32,
}

/// Inert placeholder occupying freed pool slots (dropping the real
/// event's payload eagerly).
fn vacant_event() -> Event {
    Event::Timer {
        node: NodeId(0),
        token: 0,
    }
}

/// Slab of queued-event records with an intrusive free list: push
/// recycles a freed record instead of allocating, so steady-state
/// scheduling does no per-event allocation.
struct EventPool {
    slots: Vec<PoolSlot>,
    free_head: u32,
}

impl EventPool {
    fn new() -> Self {
        EventPool {
            slots: Vec::new(),
            free_head: NIL,
        }
    }

    fn alloc(&mut self, q: Queued) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            self.free_head = slot.next;
            slot.key = q.key;
            slot.event = q.event;
            slot.next = NIL;
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("event pool overflow");
            self.slots.push(PoolSlot {
                key: q.key,
                event: q.event,
                next: NIL,
            });
            idx
        }
    }

    fn free(&mut self, idx: u32) -> Queued {
        let slot = &mut self.slots[idx as usize];
        let key = slot.key;
        let event = std::mem::replace(&mut slot.event, vacant_event());
        slot.next = self.free_head;
        self.free_head = idx;
        Queued { key, event }
    }

    fn key(&self, idx: u32) -> EventKey {
        self.slots[idx as usize].key
    }
}

/// A pooled event plus its key, ordered by key — the element type of
/// the bucket and overflow heaps.
struct PooledEntry {
    key: EventKey,
    idx: u32,
}

impl PartialEq for PooledEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for PooledEntry {}
impl PartialOrd for PooledEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PooledEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Head/tail of one slot's intrusive FIFO list into the pool.
#[derive(Clone, Copy)]
struct SlotList {
    head: u32,
    tail: u32,
}

const EMPTY_SLOT: SlotList = SlotList {
    head: NIL,
    tail: NIL,
};

/// The hierarchical timing wheel. See the module docs for the layout
/// and the pop-order contract.
pub(crate) struct TimingWheel {
    pool: EventPool,
    levels: Vec<[SlotList; SLOTS]>,
    occupancy: [u64; LEVELS],
    /// Frontier: the timestamp the wheel is currently based at. All
    /// wheel content is at `cur ..= cur + 2^42 - 1` µs (events outside
    /// live in `overflow`, strays below in `backlog`). Only meaningful
    /// while `based`.
    cur: u64,
    based: bool,
    /// Pool indexes pushed while unbased, placed on first frontier use.
    staging: Vec<u32>,
    /// Events at exactly `cur`, popped in full-key order.
    bucket: BinaryHeap<Reverse<PooledEntry>>,
    /// Events pushed below `cur` (rare; see module docs).
    backlog: BinaryHeap<Reverse<Queued>>,
    /// Events at or beyond `cur + 2^42` µs.
    overflow: BinaryHeap<Reverse<PooledEntry>>,
    len: usize,
}

impl TimingWheel {
    pub(crate) fn new() -> Self {
        TimingWheel {
            pool: EventPool::new(),
            levels: vec![[EMPTY_SLOT; SLOTS]; LEVELS],
            occupancy: [0; LEVELS],
            cur: 0,
            based: false,
            staging: Vec::new(),
            bucket: BinaryHeap::new(),
            backlog: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn push(&mut self, q: Queued) {
        self.len += 1;
        if !self.based {
            let idx = self.pool.alloc(q);
            self.staging.push(idx);
            return;
        }
        let t = q.key.at.as_micros();
        if t < self.cur {
            self.backlog.push(Reverse(q));
            return;
        }
        if t == self.cur && !self.bucket.is_empty() {
            // The frontier timestamp is being drained right now; joining
            // the bucket keeps full-key order among its remaining ties.
            let key = q.key;
            let idx = self.pool.alloc(q);
            self.bucket.push(Reverse(PooledEntry { key, idx }));
            return;
        }
        let idx = self.pool.alloc(q);
        self.place(idx, t);
    }

    /// File a pooled event into its wheel level (or overflow). Requires
    /// `based` and `t >= self.cur`.
    fn place(&mut self, idx: u32, t: u64) {
        debug_assert!(self.based && t >= self.cur);
        let diff = t ^ self.cur;
        if diff >> HORIZON_BITS != 0 {
            let key = self.pool.key(idx);
            self.overflow.push(Reverse(PooledEntry { key, idx }));
            return;
        }
        // Highest 6-bit group where `t` differs from the frontier; all
        // lower groups stay ambiguous until the wheel cascades down to
        // this level, which is exactly when they become decisive.
        let level = if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros()) as usize / SLOT_BITS as usize
        };
        let slot = ((t >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        let list = &mut self.levels[level][slot];
        if list.head == NIL {
            list.head = idx;
        } else {
            self.pool.slots[list.tail as usize].next = idx;
        }
        list.tail = idx;
        self.occupancy[level] |= 1 << slot;
    }

    /// Detach a slot's FIFO list, returning its head.
    fn take_slot(&mut self, level: usize, slot: usize) -> u32 {
        let list = std::mem::replace(&mut self.levels[level][slot], EMPTY_SLOT);
        self.occupancy[level] &= !(1u64 << slot);
        list.head
    }

    /// Advance the frontier until the bucket holds the earliest wheel
    /// timestamp (or the wheel side is empty). Sound because `cur` only
    /// ever advances to the minimum *pending* wheel timestamp — never
    /// past an event still queued — so causal pushes (always at or
    /// after the event being processed) land at or after `cur`, and the
    /// acausal remainder is exactly what `backlog` absorbs.
    fn ensure_frontier(&mut self) {
        if !self.based {
            if self.staging.is_empty() {
                return;
            }
            self.cur = self
                .staging
                .iter()
                .map(|&idx| self.pool.key(idx).at.as_micros())
                .min()
                .expect("staging non-empty");
            self.based = true;
            for idx in std::mem::take(&mut self.staging) {
                let t = self.pool.key(idx).at.as_micros();
                self.place(idx, t);
            }
        }
        loop {
            if !self.bucket.is_empty() {
                return;
            }
            // Level 0: one timestamp per slot — drain it into the bucket.
            if self.occupancy[0] != 0 {
                let slot = self.occupancy[0].trailing_zeros() as usize;
                let mut idx = self.take_slot(0, slot);
                self.cur = (self.cur & !SLOT_MASK) | slot as u64;
                while idx != NIL {
                    let next = self.pool.slots[idx as usize].next;
                    self.pool.slots[idx as usize].next = NIL;
                    let key = self.pool.key(idx);
                    debug_assert_eq!(key.at.as_micros(), self.cur);
                    self.bucket.push(Reverse(PooledEntry { key, idx }));
                    idx = next;
                }
                return;
            }
            // Cascade the first occupied slot of the lowest occupied
            // level: rebase the frontier on that slot's prefix and
            // re-place its events, which now land strictly below it.
            let mut cascaded = false;
            for level in 1..LEVELS {
                if self.occupancy[level] == 0 {
                    continue;
                }
                let slot = self.occupancy[level].trailing_zeros() as usize;
                let mut idx = self.take_slot(level, slot);
                let shift = SLOT_BITS * level as u32;
                self.cur =
                    (self.cur & !((1u64 << (shift + SLOT_BITS)) - 1)) | ((slot as u64) << shift);
                while idx != NIL {
                    let next = self.pool.slots[idx as usize].next;
                    self.pool.slots[idx as usize].next = NIL;
                    let t = self.pool.key(idx).at.as_micros();
                    self.place(idx, t);
                    idx = next;
                }
                cascaded = true;
                break;
            }
            if cascaded {
                continue;
            }
            // Inner wheel empty: jump to the overflow minimum and pull
            // in its whole 2^42 µs window.
            let Some(Reverse(head)) = self.overflow.peek() else {
                return;
            };
            let base = head.key.at.as_micros();
            self.cur = base;
            let window = base >> HORIZON_BITS;
            while let Some(Reverse(head)) = self.overflow.peek() {
                if head.key.at.as_micros() >> HORIZON_BITS != window {
                    break;
                }
                let Reverse(entry) = self.overflow.pop().expect("peeked");
                self.place(entry.idx, entry.key.at.as_micros());
            }
        }
    }

    pub(crate) fn peek_key(&mut self) -> Option<EventKey> {
        self.ensure_frontier();
        let wheel_min = self.bucket.peek().map(|Reverse(e)| e.key);
        let backlog_min = self.backlog.peek().map(|Reverse(q)| q.key);
        match (wheel_min, backlog_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Queued> {
        self.ensure_frontier();
        let from_backlog = match (self.bucket.peek(), self.backlog.peek()) {
            (Some(Reverse(e)), Some(Reverse(q))) => q.key < e.key,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => return None,
        };
        let q = if from_backlog {
            let Reverse(q) = self.backlog.pop().expect("peeked");
            q
        } else {
            let Reverse(entry) = self.bucket.pop().expect("peeked");
            self.pool.free(entry.idx)
        };
        self.len -= 1;
        if self.len == 0 {
            // Fully drained: forget the frontier so the next batch of
            // pushes re-bases at its own minimum instead of landing in
            // the backlog below a stale `cur`.
            self.based = false;
        }
        Some(q)
    }
}

/// The event queue both engines schedule through: the original binary
/// heap or the timing wheel, selected by [`QueueKind`].
pub(crate) enum EventQueue {
    Heap(BinaryHeap<Reverse<Queued>>),
    Wheel(Box<TimingWheel>),
}

impl EventQueue {
    pub(crate) fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Heap => EventQueue::Heap(BinaryHeap::new()),
            QueueKind::Wheel => EventQueue::Wheel(Box::new(TimingWheel::new())),
        }
    }

    pub(crate) fn kind(&self) -> QueueKind {
        match self {
            EventQueue::Heap(_) => QueueKind::Heap,
            EventQueue::Wheel(_) => QueueKind::Wheel,
        }
    }

    pub(crate) fn push(&mut self, q: Queued) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse(q)),
            EventQueue::Wheel(w) => w.push(q),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Queued> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(q)| q),
            EventQueue::Wheel(w) => w.pop(),
        }
    }

    /// Key of the earliest pending event. Takes `&mut self` because the
    /// wheel advances its frontier to answer (a pure state-machine step;
    /// observable order is unchanged).
    pub(crate) fn peek_key(&mut self) -> Option<EventKey> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|Reverse(q)| q.key),
            EventQueue::Wheel(w) => w.peek_key(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Wheel(w) => w.len(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One scheduler operation captured by
/// [`Simulator::record_schedule`](crate::Simulator::record_schedule).
///
/// A recorded run is a flat sequence of these; replaying it through
/// [`replay_schedule`] exercises a queue kind with exactly the push/pop
/// interleaving, timestamps, and depth profile of the original
/// simulation, but none of its dispatch work — a scheduler-isolated
/// benchmark on a real workload's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleOp {
    /// An event was scheduled for this absolute simulation time (µs).
    Push(u64),
    /// The earliest pending event was dequeued.
    Pop,
}

/// Replay a recorded schedule through a fresh queue of `kind` and
/// return the number of events popped.
///
/// Every push carries a minimal `Timer` payload and a monotonic
/// insertion key, identical across kinds, so the measured cost is the
/// queue discipline itself (plus the pool/allocator traffic it
/// implies) and nothing else. Popped keys are folded into a checksum
/// handed to [`std::hint::black_box`] so the loop cannot be optimized
/// away.
#[must_use]
pub fn replay_schedule(ops: &[ScheduleOp], kind: QueueKind) -> u64 {
    let mut queue = EventQueue::new(kind);
    let mut seq = 0u64;
    let mut pops = 0u64;
    let mut checksum = 0u64;
    for &op in ops {
        match op {
            ScheduleOp::Push(at) => {
                queue.push(Queued {
                    key: EventKey {
                        at: crate::time::SimTime::from_micros(at),
                        origin: 0,
                        seq,
                    },
                    event: Event::Timer {
                        node: NodeId(0),
                        token: seq,
                    },
                });
                seq += 1;
            }
            ScheduleOp::Pop => {
                if let Some(q) = queue.pop() {
                    checksum ^= q.key.at.as_micros().wrapping_mul(q.key.seq | 1);
                    pops += 1;
                }
            }
        }
    }
    std::hint::black_box(checksum);
    pops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn q(at: u64, origin: u64, seq: u64) -> Queued {
        Queued {
            key: EventKey {
                at: SimTime::from_micros(at),
                origin,
                seq,
            },
            event: Event::Timer {
                node: NodeId(0),
                token: origin,
            },
        }
    }

    fn drain_keys(w: &mut TimingWheel) -> Vec<EventKey> {
        let mut out = Vec::new();
        while let Some(popped) = w.pop() {
            out.push(popped.key);
        }
        out
    }

    #[test]
    fn pops_in_full_key_order() {
        let mut w = TimingWheel::new();
        let mut keys: Vec<EventKey> = Vec::new();
        // Same-time tie bursts, distinct times, out-of-order pushes.
        for (at, origin, seq) in [
            (50, 3, 0),
            (10, 1, 0),
            (50, 1, 2),
            (50, 1, 1),
            (0, 9, 9),
            (10, 0, 7),
            (1 << 20, 0, 0),
            (50, 3, 1),
        ] {
            w.push(q(at, origin, seq));
            keys.push(q(at, origin, seq).key);
        }
        keys.sort();
        assert_eq!(drain_keys(&mut w), keys);
    }

    #[test]
    fn same_timestamp_push_during_drain_joins_bucket() {
        let mut w = TimingWheel::new();
        w.push(q(100, 5, 0));
        w.push(q(100, 7, 0));
        // Start draining t=100.
        let first = w.pop().unwrap();
        assert_eq!(first.key.origin, 5);
        // A zero-delay event created mid-drain with a *lower* origin
        // than the remaining tie must still pop before it.
        w.push(q(100, 6, 0));
        assert_eq!(w.pop().unwrap().key.origin, 6);
        assert_eq!(w.pop().unwrap().key.origin, 7);
        assert!(w.pop().is_none());
    }

    #[test]
    fn push_below_frontier_lands_in_backlog_and_pops_first() {
        let mut w = TimingWheel::new();
        w.push(q(1_000, 0, 0));
        w.push(q(5_000, 0, 1));
        assert_eq!(w.pop().unwrap().key.at.as_micros(), 1_000);
        // Frontier has advanced past 1 000; a later environment-style
        // push below it must still come out in time order.
        assert_eq!(w.peek_key().unwrap().at.as_micros(), 5_000);
        w.push(q(2_000, u64::MAX, 0));
        assert_eq!(w.pop().unwrap().key.at.as_micros(), 2_000);
        assert_eq!(w.pop().unwrap().key.at.as_micros(), 5_000);
    }

    /// Satellite: rollover across a wheel-level boundary. Times chosen
    /// to straddle slot and level boundaries at level 0/1/2 (64 µs and
    /// 4096 µs periods) so cascades re-place events correctly.
    #[test]
    fn level_boundary_rollover_keeps_order() {
        let mut w = TimingWheel::new();
        let mut expect = Vec::new();
        let boundaries = [63, 64, 65, 4_095, 4_096, 4_097, 262_143, 262_144];
        for (i, &at) in boundaries.iter().enumerate() {
            w.push(q(at, i as u64, 0));
            expect.push(q(at, i as u64, 0).key);
        }
        expect.sort();
        assert_eq!(drain_keys(&mut w), expect);
    }

    /// Interleaved pop/push across a level boundary: after draining the
    /// last slot of a level-0 revolution the cascade must pick up the
    /// next level-1 slot, including events pushed after basing.
    #[test]
    fn interleaved_rollover_across_level_boundary() {
        let mut w = TimingWheel::new();
        w.push(q(60, 0, 0));
        assert_eq!(w.pop().unwrap().key.at.as_micros(), 60);
        // Frontier now 60; push just past the level-0 horizon (64) and
        // beyond the level-1 horizon (4096).
        w.push(q(63, 0, 1));
        w.push(q(64, 0, 2));
        w.push(q(5_000, 0, 3));
        assert_eq!(w.pop().unwrap().key.at.as_micros(), 63);
        assert_eq!(w.pop().unwrap().key.at.as_micros(), 64);
        assert_eq!(w.pop().unwrap().key.at.as_micros(), 5_000);
        assert!(w.pop().is_none());
    }

    #[test]
    fn far_future_times_go_through_overflow() {
        let mut w = TimingWheel::new();
        let far = 1u64 << 50; // beyond the 2^42 µs horizon
        w.push(q(5, 0, 0));
        w.push(q(far + 3, 0, 1));
        w.push(q(far, 0, 2));
        w.push(q(far + (1 << 44), 0, 3)); // a *different* overflow window
        assert_eq!(w.pop().unwrap().key.at.as_micros(), 5);
        assert_eq!(w.pop().unwrap().key.at.as_micros(), far);
        assert_eq!(w.pop().unwrap().key.at.as_micros(), far + 3);
        assert_eq!(w.pop().unwrap().key.at.as_micros(), far + (1 << 44));
        assert!(w.pop().is_none());
    }

    #[test]
    fn drained_wheel_rebases_for_late_pushes() {
        let mut w = TimingWheel::new();
        w.push(q(1 << 30, 0, 0));
        assert_eq!(w.pop().unwrap().key.at.as_micros(), 1 << 30);
        assert!(w.pop().is_none());
        // Empty again: pushes far below the stale frontier must take
        // the fast wheel path (re-based), not the backlog.
        w.push(q(7, 0, 1));
        w.push(q(3, 0, 2));
        assert!(w.backlog.is_empty());
        assert_eq!(w.pop().unwrap().key.at.as_micros(), 3);
        assert_eq!(w.pop().unwrap().key.at.as_micros(), 7);
    }

    #[test]
    fn pool_recycles_slots() {
        let mut w = TimingWheel::new();
        for round in 0..10u64 {
            for i in 0..100u64 {
                w.push(q(round * 1_000 + i, i, round));
            }
            for _ in 0..100 {
                w.pop().unwrap();
            }
        }
        // 1000 events passed through, but the slab never held more than
        // one round's worth.
        assert!(w.pool.slots.len() <= 100);
    }

    /// Randomized differential check against a `BinaryHeap` with
    /// interleaved pushes and pops (a deterministic xorshift drives the
    /// schedule; the proptest suite in `tests/` covers the adversarial
    /// cases).
    #[test]
    fn differential_vs_heap_interleaved() {
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut step = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut wheel = TimingWheel::new();
        let mut heap: BinaryHeap<Reverse<Queued>> = BinaryHeap::new();
        let mut now = 0u64;
        for i in 0..20_000u64 {
            let r = step();
            if r % 3 != 0 {
                // Push at or after the last popped time, with occasional
                // same-time ties and far-future jumps.
                let delta = match r % 7 {
                    0 => 0,
                    1..=4 => r % 1_024,
                    5 => r % (1 << 20),
                    _ => 1 << (36 + (r % 12)),
                };
                let item = q(now + delta, r % 5, i);
                wheel.push(q(now + delta, r % 5, i));
                heap.push(Reverse(item));
            } else {
                let got = wheel.pop();
                let want = heap.pop().map(|Reverse(x)| x);
                match (&got, &want) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.key, b.key, "diverged at step {i}");
                        now = a.key.at.as_micros();
                    }
                    _ => panic!("one queue empty, the other not, at step {i}"),
                }
            }
        }
        while let Some(Reverse(want)) = heap.pop() {
            assert_eq!(wheel.pop().unwrap().key, want.key);
        }
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn replay_schedule_drains_both_kinds_fully() {
        // A schedule shaped like a sim run: a burst of pushes, then
        // interleaved pop/push pairs, then a drain.
        let mut ops = Vec::new();
        let mut t = 0u64;
        for i in 0..100 {
            ops.push(ScheduleOp::Push(i * 17));
        }
        for i in 0..1_000u64 {
            ops.push(ScheduleOp::Pop);
            t += i % 3;
            ops.push(ScheduleOp::Push(t + 1_000));
        }
        for _ in 0..1_100 {
            ops.push(ScheduleOp::Pop);
        }
        assert_eq!(replay_schedule(&ops, QueueKind::Heap), 1_100);
        assert_eq!(replay_schedule(&ops, QueueKind::Wheel), 1_100);
    }
}
