//! Simulated time: microsecond-resolution instants and durations.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant of simulated time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);

    /// Instant from raw microseconds.
    #[must_use]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Raw microseconds since the epoch.
    #[must_use]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Duration from raw microseconds.
    #[must_use]
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Duration from milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Duration from whole seconds.
    #[must_use]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Duration from fractional seconds (rounded to the nearest µs).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microseconds.
    #[must_use]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating multiplication by an integer factor (used for
    /// exponential RTO backoff).
    #[must_use]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "negative elapsed time");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimTime::from_micros(9).as_micros(), 9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(100) + SimDuration::from_micros(50);
        assert_eq!(t.as_micros(), 150);
        assert_eq!((t - SimTime::from_micros(100)).as_micros(), 50);
        let mut u = SimTime::ZERO;
        u += SimDuration::from_secs(1);
        assert_eq!(u.as_secs_f64(), 1.0);
    }

    #[test]
    fn duration_sub_saturates() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(30);
        assert_eq!((a - b).as_micros(), 0);
    }

    #[test]
    fn saturating_mul_never_overflows() {
        let d = SimDuration::from_secs(1 << 40);
        assert_eq!(d.saturating_mul(u64::MAX).as_micros(), u64::MAX);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7µs");
        assert_eq!(SimDuration::from_micros(2_500).to_string(), "2.500ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(SimTime::from_micros(1_500_000).to_string(), "1.500000s");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_and_max_min() {
        let a = SimDuration::from_micros(5);
        let b = SimDuration::from_micros(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimTime::from_micros(3).max(SimTime::from_micros(8)),
            SimTime::from_micros(8)
        );
    }
}
