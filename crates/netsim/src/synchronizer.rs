//! Conservative synchronization primitives for the parallel engine.
//!
//! The engine advances in *windows*. Each round, every worker publishes
//! the timestamp of its earliest pending event, all workers meet at a
//! barrier, and each computes the global minimum — the lower bound on
//! timestamp (LBTS). Events strictly before `LBTS + lookahead` are safe
//! to process: any message generated in the window travels over a
//! cross-worker link and therefore arrives no earlier than its send
//! time plus the link's propagation delay, which is `>= LBTS +
//! lookahead` by the definition of lookahead. A second barrier after
//! processing guarantees all sends of the round are visible before
//! inboxes are drained, so channels are empty again when the next round
//! publishes.
//!
//! All primitives are *halt-aware*: a worker that panics (event budget,
//! node bug) flips the halted flag and wakes everyone, so no thread is
//! left blocked on a barrier that can never complete. The engine then
//! re-raises the original panic on the caller thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use bytecache_packet::Packet;

use crate::node::NodeId;
use crate::sim::EventKey;

/// The synchronizer was halted (a peer worker panicked); unwind
/// cleanly without completing the run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Halted;

struct BarrierState {
    arrived: usize,
    generation: u64,
}

/// Shared synchronization state for one parallel run: LBTS slots, the
/// reusable halt-aware barrier, and the global event-budget counter.
pub(crate) struct Synchronizer {
    workers: usize,
    /// Per-worker published next-event time (µs; `u64::MAX` = idle).
    slots: Vec<AtomicU64>,
    halted: AtomicBool,
    /// Events processed across all workers (continues the serial
    /// counter so budgets span `run_until` segments).
    events: AtomicU64,
    budget: u64,
    lock: Mutex<BarrierState>,
    cv: Condvar,
}

impl Synchronizer {
    pub(crate) fn new(workers: usize, events_so_far: u64, budget: u64) -> Self {
        Synchronizer {
            workers,
            slots: (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect(),
            halted: AtomicBool::new(false),
            events: AtomicU64::new(events_so_far),
            budget,
            lock: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Publish worker `id`'s earliest pending event time for this round.
    pub(crate) fn publish(&self, id: usize, next_us: u64) {
        self.slots[id].store(next_us, Ordering::Release);
    }

    /// Minimum published time across all workers (call between the
    /// publish barrier and the post-process barrier).
    pub(crate) fn lbts_us(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Meet the other workers. Returns `Err(Halted)` if any worker
    /// halted the run; the caller must unwind without blocking again.
    pub(crate) fn barrier(&self) -> Result<(), Halted> {
        let mut st = self.lock.lock().expect("synchronizer lock poisoned");
        if self.halted.load(Ordering::SeqCst) {
            return Err(Halted);
        }
        st.arrived += 1;
        if st.arrived == self.workers {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        while st.generation == gen && !self.halted.load(Ordering::SeqCst) {
            st = self.cv.wait(st).expect("synchronizer lock poisoned");
        }
        if self.halted.load(Ordering::SeqCst) {
            Err(Halted)
        } else {
            Ok(())
        }
    }

    /// Abort the run: wake every blocked worker; all subsequent
    /// blocking calls return `Err(Halted)`.
    pub(crate) fn halt(&self) {
        self.halted.store(true, Ordering::SeqCst);
        let _guard = self.lock.lock().expect("synchronizer lock poisoned");
        self.cv.notify_all();
    }

    pub(crate) fn is_halted(&self) -> bool {
        self.halted.load(Ordering::SeqCst)
    }

    /// Count one processed event; returns the new global total. The
    /// caller halts and panics when the total exceeds
    /// [`budget`](Self::budget).
    pub(crate) fn bump_event(&self) -> u64 {
        self.events.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn budget(&self) -> u64 {
        self.budget
    }

    /// Total events processed (read after the run).
    pub(crate) fn events_total(&self) -> u64 {
        self.events.load(Ordering::SeqCst)
    }
}

/// A delivery crossing a worker boundary: the event key was assigned by
/// the sending worker (it owns the link and the origin node's
/// counters), so the receiver just enqueues it.
#[derive(Debug)]
pub(crate) struct CrossMsg {
    pub(crate) key: EventKey,
    pub(crate) to: NodeId,
    pub(crate) packet: Packet,
}

/// Bounded single-producer single-consumer event channel for one
/// ordered worker pair.
pub(crate) struct EventChannel {
    queue: Mutex<VecDeque<CrossMsg>>,
    capacity: usize,
}

impl EventChannel {
    pub(crate) fn new(capacity: usize) -> Self {
        EventChannel {
            queue: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Try to enqueue; hands the message back when the channel is full
    /// (the sender then drains its own inboxes to break send cycles and
    /// retries).
    pub(crate) fn try_send(&self, msg: CrossMsg) -> Result<(), CrossMsg> {
        let mut q = self.queue.lock().expect("event channel poisoned");
        if q.len() >= self.capacity {
            return Err(msg);
        }
        q.push_back(msg);
        Ok(())
    }

    /// Dequeue the oldest message, if any.
    pub(crate) fn try_recv(&self) -> Option<CrossMsg> {
        self.queue
            .lock()
            .expect("event channel poisoned")
            .pop_front()
    }
}

/// All `workers × (workers - 1)` directed channels of one run.
pub(crate) struct ChannelMatrix {
    workers: usize,
    channels: Vec<EventChannel>,
}

impl ChannelMatrix {
    pub(crate) fn new(workers: usize, capacity: usize) -> Self {
        ChannelMatrix {
            workers,
            channels: (0..workers * workers)
                .map(|_| EventChannel::new(capacity))
                .collect(),
        }
    }

    pub(crate) fn channel(&self, from: usize, to: usize) -> &EventChannel {
        debug_assert!(from != to, "no self-channel");
        &self.channels[from * self.workers + to]
    }

    pub(crate) fn workers(&self) -> usize {
        self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn msg(at: u64) -> CrossMsg {
        CrossMsg {
            key: EventKey {
                at: SimTime::from_micros(at),
                origin: 0,
                seq: 0,
            },
            to: NodeId(0),
            packet: Packet::builder().build(),
        }
    }

    #[test]
    fn barrier_releases_all_workers() {
        let sync = Synchronizer::new(3, 0, u64::MAX);
        std::thread::scope(|s| {
            for id in 0..3 {
                let sync = &sync;
                s.spawn(move || {
                    sync.publish(id, id as u64);
                    sync.barrier().expect("not halted");
                    assert_eq!(sync.lbts_us(), 0);
                });
            }
        });
    }

    #[test]
    fn halt_wakes_blocked_workers() {
        let sync = Synchronizer::new(2, 0, u64::MAX);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| sync.barrier());
            // Give the waiter a moment to block, then halt instead of
            // ever arriving at the barrier.
            std::thread::sleep(std::time::Duration::from_millis(10));
            sync.halt();
            assert!(waiter.join().expect("no panic").is_err());
        });
        assert!(sync.is_halted());
    }

    #[test]
    fn channel_is_bounded_fifo() {
        let ch = EventChannel::new(2);
        ch.try_send(msg(1)).expect("fits");
        ch.try_send(msg(2)).expect("fits");
        let back = ch.try_send(msg(3)).expect_err("full");
        assert_eq!(back.key.at.as_micros(), 3);
        assert_eq!(ch.try_recv().expect("one").key.at.as_micros(), 1);
        ch.try_send(msg(3)).expect("space again");
        assert_eq!(ch.try_recv().expect("two").key.at.as_micros(), 2);
        assert_eq!(ch.try_recv().expect("three").key.at.as_micros(), 3);
        assert!(ch.try_recv().is_none());
    }

    #[test]
    fn budget_counter_is_global() {
        let sync = Synchronizer::new(2, 10, 100);
        assert_eq!(sync.bump_event(), 11);
        assert_eq!(sync.bump_event(), 12);
        assert_eq!(sync.events_total(), 12);
        assert_eq!(sync.budget(), 100);
    }
}
