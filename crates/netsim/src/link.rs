//! Unidirectional links: serialization rate, propagation delay, and a
//! channel impairment model.

use rand::rngs::StdRng;

use crate::channel::{ChannelConfig, Verdict};
use crate::time::{SimDuration, SimTime};

/// Identifier of a link within one [`Simulator`](crate::Simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl core::fmt::Display for LinkId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Configuration of one unidirectional link.
///
/// A link serializes packets FIFO at `rate_bytes_per_sec` (the paper's
/// 1 MB/s traffic shaper), then delivers after `propagation` plus any
/// reordering delay the channel adds. `rate_bytes_per_sec = None` models
/// an uncongested wire (zero serialization time).
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Serialization rate; `None` = infinite.
    pub rate_bytes_per_sec: Option<u64>,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Impairments applied to packets traversing the link.
    pub channel: ChannelConfig,
}

impl Default for LinkConfig {
    /// An ideal link: infinite rate, 1 ms propagation, clean channel.
    fn default() -> Self {
        LinkConfig {
            rate_bytes_per_sec: None,
            propagation: SimDuration::from_millis(1),
            channel: ChannelConfig::clean(),
        }
    }
}

impl LinkConfig {
    /// The paper's wireless segment: `rate` bytes/s, `propagation`
    /// one-way delay, Bernoulli loss at `loss_rate`.
    #[must_use]
    pub fn wireless(rate: u64, propagation: SimDuration, loss_rate: f64) -> Self {
        LinkConfig {
            rate_bytes_per_sec: Some(rate),
            propagation,
            channel: ChannelConfig::lossy(loss_rate),
        }
    }

    /// Time to serialize `bytes` onto this link.
    #[must_use]
    pub fn serialization_time(&self, bytes: usize) -> SimDuration {
        match self.rate_bytes_per_sec {
            None => SimDuration::ZERO,
            Some(rate) => {
                // Round up so a 1-byte packet on a fast link still takes 1µs... 0?
                // Exact integer micros: bytes * 1e6 / rate.
                SimDuration::from_micros((bytes as u64 * 1_000_000).div_ceil(rate.max(1)))
            }
        }
    }
}

/// Outcome of pushing one packet through a link's shaper + channel.
///
/// Shared semantics core for the serial loop and the PDES workers: the
/// caller wraps it with its own telemetry/trace emission and event
/// scheduling, so both engines update `busy_until`, stats and the
/// channel RNG identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxVerdict {
    /// Channel dropped the packet.
    Lost,
    /// Channel corrupted the packet beyond use.
    Corrupted,
    /// Packet arrives at `arrive`.
    Deliver { arrive: SimTime },
    /// Packet arrives late (reordered) at `arrive`.
    Reorder { arrive: SimTime },
    /// Packet arrives at `arrive` and a duplicate copy at `copy`
    /// (the copy is scheduled *first*, matching the historical serial
    /// insertion order).
    Duplicate { arrive: SimTime, copy: SimTime },
}

/// Runtime state of a link (owned by the simulator, or by the worker
/// owning the link's sender while a parallel run is in flight).
#[derive(Debug)]
pub(crate) struct LinkState {
    pub(crate) config: LinkConfig,
    pub(crate) channel: crate::channel::Channel,
    /// Time at which the transmitter finishes its current backlog.
    pub(crate) busy_until: SimTime,
    pub(crate) stats: crate::stats::LinkStats,
    /// Deterministic per-link RNG stream, seeded from (sim seed,
    /// link id) in the deterministic exec modes. `None` in legacy
    /// serial mode, where the simulator's global RNG is used instead.
    pub(crate) rng: Option<StdRng>,
}

impl LinkState {
    pub(crate) fn new(config: LinkConfig) -> Self {
        LinkState {
            channel: crate::channel::Channel::new(config.channel.clone()),
            config,
            busy_until: SimTime::ZERO,
            stats: crate::stats::LinkStats::default(),
            rng: None,
        }
    }

    /// Push one packet of `wire` serialized bytes through the shaper
    /// and channel at `now`, updating `busy_until`, stats and whichever
    /// RNG stream this link draws from. `global_rng` is the simulator's
    /// global RNG (legacy serial mode); deterministic modes seed
    /// `self.rng` before the run and never touch the global stream.
    pub(crate) fn transmit(
        &mut self,
        now: SimTime,
        wire: usize,
        global_rng: Option<&mut StdRng>,
    ) -> TxVerdict {
        self.stats.packets_offered += 1;
        self.stats.bytes_offered += wire as u64;

        let depart = now.max(self.busy_until);
        let done = depart + self.config.serialization_time(wire);
        self.busy_until = done;

        let rng = match self.rng.as_mut() {
            Some(r) => r,
            None => global_rng.expect("legacy serial mode must supply the global RNG"),
        };
        match self.channel.verdict(rng) {
            Verdict::Lose => {
                self.stats.packets_lost += 1;
                TxVerdict::Lost
            }
            Verdict::Corrupt => {
                self.stats.packets_corrupted += 1;
                TxVerdict::Corrupted
            }
            Verdict::Deliver => {
                self.stats.packets_delivered += 1;
                self.stats.bytes_delivered += wire as u64;
                TxVerdict::Deliver {
                    arrive: done + self.config.propagation,
                }
            }
            Verdict::Reorder(extra) => {
                self.stats.packets_delivered += 1;
                self.stats.bytes_delivered += wire as u64;
                self.stats.packets_reordered += 1;
                TxVerdict::Reorder {
                    arrive: done + self.config.propagation + extra,
                }
            }
            Verdict::Duplicate(extra) => {
                self.stats.packets_delivered += 1;
                self.stats.bytes_delivered += wire as u64;
                self.stats.packets_duplicated += 1;
                let arrive = done + self.config.propagation;
                TxVerdict::Duplicate {
                    arrive,
                    copy: arrive + extra,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_matches_rate() {
        let cfg = LinkConfig {
            rate_bytes_per_sec: Some(1_000_000),
            ..LinkConfig::default()
        };
        // 1500 bytes at 1 MB/s = 1500 µs.
        assert_eq!(cfg.serialization_time(1500).as_micros(), 1500);
        assert_eq!(cfg.serialization_time(0).as_micros(), 0);
        // Rounds up.
        let slow = LinkConfig {
            rate_bytes_per_sec: Some(3_000_000),
            ..LinkConfig::default()
        };
        assert_eq!(slow.serialization_time(1).as_micros(), 1);
    }

    #[test]
    fn infinite_rate_serializes_instantly() {
        let cfg = LinkConfig::default();
        assert_eq!(cfg.serialization_time(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn wireless_constructor() {
        let cfg = LinkConfig::wireless(1_000_000, SimDuration::from_millis(10), 0.05);
        assert_eq!(cfg.rate_bytes_per_sec, Some(1_000_000));
        assert_eq!(cfg.propagation.as_micros(), 10_000);
        assert!(matches!(
            cfg.channel.loss,
            crate::channel::LossModel::Bernoulli { rate } if rate == 0.05
        ));
    }
}
