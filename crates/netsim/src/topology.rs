//! Declarative multi-hop topologies with deterministic routing, and the
//! [`Mobility`] driver that moves a client between gateways mid-run.
//!
//! The simulator's routing is a static per-node `dst → next_hop` table
//! (see [`Simulator::add_route`]); until now every scenario wired those
//! tables by hand, which stops scaling the moment there is more than one
//! path. [`Topology`] records the link graph as it is built
//! (chain/star/mesh builders or explicit [`Topology::connect`] calls),
//! binds destination addresses to owning nodes, and derives every
//! routing table from a breadth-first search over the *enabled* edges.
//! The derivation is fully deterministic: adjacency is iterated in
//! ascending node order and ties between equal-length paths are broken
//! toward the smallest-index neighbor, so the same graph always yields
//! byte-identical tables regardless of build order or execution mode.
//!
//! Topology changes (a client detaching from one basestation and
//! attaching to another) are expressed by toggling edges with
//! [`Topology::set_edge`] and calling [`Topology::reroute_at`], which
//! recomputes the tables, diffs them against the previously installed
//! state, and schedules exactly the changed entries through
//! [`Simulator::schedule_route_change`] — the same mobility primitive
//! the Section II scenario uses, now driven from the graph instead of
//! by hand.
//!
//! [`Mobility`] packages the common pattern: a scripted sequence of
//! gateway handoffs for one client address. Each hop disables the old
//! attachment edge, enables the new one, and *blocks* the old gateway's
//! route to the client so shim packets still queued there are dropped
//! (and counted in `no_route_drops`) instead of being rerouted through
//! the mesh into a decoder that never saw their encoding context.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::net::Ipv4Addr;

use crate::link::{LinkConfig, LinkId};
use crate::node::NodeId;
use crate::sim::Simulator;
use crate::time::SimTime;

/// An undirected edge between two nodes, addressed by the node pair.
#[derive(Debug, Clone)]
struct Edge {
    a: usize,
    b: usize,
    enabled: bool,
    /// Directed link `a → b` (with `a < b` per [`pair_key`]).
    ab: LinkId,
    /// Directed link `b → a`.
    ba: LinkId,
}

/// A link graph plus address bindings from which per-node routing
/// tables are derived deterministically. See the module docs.
#[derive(Debug, Default)]
pub struct Topology {
    edges: Vec<Edge>,
    by_pair: BTreeMap<(usize, usize), usize>,
    addrs: BTreeMap<Ipv4Addr, usize>,
    blocked: BTreeSet<(usize, Ipv4Addr)>,
    /// Routing state as last pushed to the simulator (installed directly
    /// or via scheduled changes).
    routes: BTreeMap<(usize, Ipv4Addr), usize>,
    max_node: usize,
}

impl Topology {
    /// An empty topology; add links with [`connect`](Self::connect).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a chain `nodes[0] — nodes[1] — … — nodes[n-1]`, every hop
    /// using `config` (duplex).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` repeats a node (duplicate link).
    #[must_use]
    pub fn chain(sim: &mut Simulator, nodes: &[NodeId], config: &LinkConfig) -> Self {
        let mut topo = Self::new();
        for pair in nodes.windows(2) {
            topo.connect(sim, pair[0], pair[1], config.clone());
        }
        topo
    }

    /// Build a star: `hub` connected to every leaf with `config` (duplex).
    ///
    /// # Panics
    ///
    /// Panics if a leaf repeats or equals the hub (duplicate link).
    #[must_use]
    pub fn star(sim: &mut Simulator, hub: NodeId, leaves: &[NodeId], config: &LinkConfig) -> Self {
        let mut topo = Self::new();
        for &leaf in leaves {
            topo.connect(sim, hub, leaf, config.clone());
        }
        topo
    }

    /// Build a full mesh over `nodes`, every pair linked with `config`
    /// (duplex).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` repeats a node (duplicate link).
    #[must_use]
    pub fn mesh(sim: &mut Simulator, nodes: &[NodeId], config: &LinkConfig) -> Self {
        let mut topo = Self::new();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                topo.connect(sim, a, b, config.clone());
            }
        }
        topo
    }

    /// Add a duplex link `a ↔ b` to the simulator and record the edge
    /// (enabled). Edges are undirected for routing purposes even though
    /// the underlying links are a unidirectional pair.
    ///
    /// # Panics
    ///
    /// Panics if the edge already exists, if `a == b`, or if either node
    /// id is unknown to the simulator.
    pub fn connect(&mut self, sim: &mut Simulator, a: NodeId, b: NodeId, config: LinkConfig) {
        assert!(a != b, "self-loop {a}");
        let key = pair_key(a.index(), b.index());
        assert!(
            !self.by_pair.contains_key(&key),
            "duplicate edge {a} -- {b}"
        );
        let (fwd, rev) = sim.add_duplex_link(a, b, config);
        // Orient the recorded pair by the normalized key so `links`
        // answers for either argument order.
        let (ab, ba) = if a.index() < b.index() {
            (fwd, rev)
        } else {
            (rev, fwd)
        };
        self.by_pair.insert(key, self.edges.len());
        self.edges.push(Edge {
            a: key.0,
            b: key.1,
            enabled: true,
            ab,
            ba,
        });
        self.max_node = self.max_node.max(key.1);
    }

    /// The directed link ids of the edge `a ↔ b` as `(a → b, b → a)` —
    /// for reading per-hop [`Simulator::link_stats`].
    ///
    /// # Panics
    ///
    /// Panics if no such edge was recorded.
    #[must_use]
    pub fn links(&self, a: NodeId, b: NodeId) -> (LinkId, LinkId) {
        let key = pair_key(a.index(), b.index());
        let idx = *self
            .by_pair
            .get(&key)
            .unwrap_or_else(|| panic!("unknown edge {a} -- {b}"));
        let e = &self.edges[idx];
        if a.index() < b.index() {
            (e.ab, e.ba)
        } else {
            (e.ba, e.ab)
        }
    }

    /// Declare that packets destined to `addr` terminate at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is already bound.
    pub fn bind(&mut self, node: NodeId, addr: Ipv4Addr) {
        let prev = self.addrs.insert(addr, node.index());
        assert!(prev.is_none(), "address {addr} bound twice");
        self.max_node = self.max_node.max(node.index());
    }

    /// The node an address is bound to, if any.
    #[must_use]
    pub fn owner(&self, addr: Ipv4Addr) -> Option<NodeId> {
        self.addrs.get(&addr).copied().map(NodeId)
    }

    /// Enable or disable an edge (the links stay in the simulator; a
    /// disabled edge is simply never routed over).
    ///
    /// # Panics
    ///
    /// Panics if no such edge was recorded.
    pub fn set_edge(&mut self, a: NodeId, b: NodeId, enabled: bool) {
        let key = pair_key(a.index(), b.index());
        let idx = *self
            .by_pair
            .get(&key)
            .unwrap_or_else(|| panic!("unknown edge {a} -- {b}"));
        self.edges[idx].enabled = enabled;
    }

    /// Whether the edge `a ↔ b` is currently enabled.
    ///
    /// # Panics
    ///
    /// Panics if no such edge was recorded.
    #[must_use]
    pub fn edge_enabled(&self, a: NodeId, b: NodeId) -> bool {
        let key = pair_key(a.index(), b.index());
        let idx = *self
            .by_pair
            .get(&key)
            .unwrap_or_else(|| panic!("unknown edge {a} -- {b}"));
        self.edges[idx].enabled
    }

    /// Suppress the route for `addr` at `node`: route derivation leaves
    /// the entry out, so packets to `addr` arriving at `node` are
    /// dropped (and counted in `no_route_drops`). Used at handoff to
    /// keep a detached gateway from leaking stale in-flight shims back
    /// through the mesh.
    pub fn block_route(&mut self, node: NodeId, addr: Ipv4Addr) {
        self.blocked.insert((node.index(), addr));
    }

    /// Undo [`block_route`](Self::block_route).
    pub fn unblock_route(&mut self, node: NodeId, addr: Ipv4Addr) {
        self.blocked.remove(&(node.index(), addr));
    }

    /// Derive the full routing state from the enabled edges: for every
    /// bound address, a breadth-first search from the owning node
    /// assigns each reachable node its next hop toward the owner
    /// (smallest-index neighbor on a shortest path). Blocked and
    /// unreachable entries are absent.
    #[must_use]
    pub fn compute_routes(&self) -> BTreeMap<(usize, Ipv4Addr), usize> {
        let n = self.max_node + 1;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            if e.enabled {
                adj[e.a].push(e.b);
                adj[e.b].push(e.a);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let mut routes = BTreeMap::new();
        for (&addr, &owner) in &self.addrs {
            let mut dist = vec![usize::MAX; n];
            dist[owner] = 0;
            let mut queue = VecDeque::from([owner]);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            for node in 0..n {
                if node == owner || dist[node] == usize::MAX {
                    continue;
                }
                if self.blocked.contains(&(node, addr)) {
                    continue;
                }
                // Ascending adjacency order makes this the smallest-index
                // neighbor strictly closer to the owner.
                let next = adj[node]
                    .iter()
                    .copied()
                    .find(|&v| dist[v] + 1 == dist[node])
                    .expect("BFS invariant: reachable node has a closer neighbor");
                routes.insert((node, addr), next);
            }
        }
        routes
    }

    /// Install the derived routing tables directly (before the
    /// simulation starts). Replaces any previously derived state.
    pub fn install_routes(&mut self, sim: &mut Simulator) {
        let desired = self.compute_routes();
        for (&(node, addr), &next) in &desired {
            sim.add_route(NodeId(node), addr, NodeId(next));
        }
        for &(node, addr) in self.routes.keys() {
            if !desired.contains_key(&(node, addr)) {
                sim.remove_route(NodeId(node), addr);
            }
        }
        self.routes = desired;
    }

    /// Recompute the routing tables and schedule exactly the entries
    /// that changed (additions, next-hop changes, removals) as route
    /// changes at simulated time `at`.
    ///
    /// Calls must come in nondecreasing `at` order: the diff is taken
    /// against the state left by the previous `install_routes` /
    /// `reroute_at` call, so out-of-order scheduling would diff against
    /// the wrong base.
    pub fn reroute_at(&mut self, sim: &mut Simulator, at: SimTime) {
        let desired = self.compute_routes();
        for (&(node, addr), &next) in &desired {
            if self.routes.get(&(node, addr)) != Some(&next) {
                sim.schedule_route_change(at, NodeId(node), addr, Some(NodeId(next)));
            }
        }
        for &(node, addr) in self.routes.keys() {
            if !desired.contains_key(&(node, addr)) {
                sim.schedule_route_change(at, NodeId(node), addr, None);
            }
        }
        self.routes = desired;
    }

    /// The currently derived routing state as `(node, dst, next_hop)`
    /// triples in deterministic order — for digests and tests.
    #[must_use]
    pub fn route_entries(&self) -> Vec<(NodeId, Ipv4Addr, NodeId)> {
        self.routes
            .iter()
            .map(|(&(node, addr), &next)| (NodeId(node), addr, NodeId(next)))
            .collect()
    }
}

fn pair_key(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A scripted hop: at `at`, the client detaches from gateway `from` and
/// attaches to gateway `to`.
#[derive(Debug, Clone, Copy)]
pub struct Hop {
    /// Simulated time of the handoff.
    pub at: SimTime,
    /// Gateway the client detaches from.
    pub from: NodeId,
    /// Gateway the client attaches to.
    pub to: NodeId,
}

/// A scripted sequence of gateway handoffs for one client address.
///
/// Built with [`Mobility::new`] + [`Mobility::hop`], then applied once
/// with [`Mobility::apply`] before the simulation runs. Each hop:
///
/// 1. disables the `from ↔ client` edge and enables `to ↔ client`,
/// 2. blocks `from`'s route to the client (stale in-flight shims at the
///    old gateway drop instead of chasing the client through the mesh),
/// 3. unblocks `to`'s route, and
/// 4. schedules the resulting routing-table diff at the hop time.
#[derive(Debug, Clone)]
pub struct Mobility {
    client_addr: Ipv4Addr,
    hops: Vec<Hop>,
}

impl Mobility {
    /// A mobility script for the client bound to `client_addr`.
    #[must_use]
    pub fn new(client_addr: Ipv4Addr) -> Self {
        Self {
            client_addr,
            hops: Vec::new(),
        }
    }

    /// Append a handoff; hops must be appended in nondecreasing time
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous hop.
    #[must_use]
    pub fn hop(mut self, at: SimTime, from: NodeId, to: NodeId) -> Self {
        if let Some(last) = self.hops.last() {
            assert!(last.at <= at, "hops must be in nondecreasing time order");
        }
        self.hops.push(Hop { at, from, to });
        self
    }

    /// The scripted hops, in time order.
    #[must_use]
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// The client address this script moves.
    #[must_use]
    pub fn client_addr(&self) -> Ipv4Addr {
        self.client_addr
    }

    /// Apply the script: mutate `topo`'s edge/block state hop by hop and
    /// schedule every routing-table diff into `sim`. Call once, before
    /// the simulation runs, after `topo.install_routes(sim)`.
    ///
    /// # Panics
    ///
    /// Panics if the client address is unbound or a hop references an
    /// edge the topology does not have.
    pub fn apply(&self, topo: &mut Topology, sim: &mut Simulator) {
        let client = topo
            .owner(self.client_addr)
            .unwrap_or_else(|| panic!("client address {} unbound", self.client_addr));
        for hop in &self.hops {
            topo.set_edge(hop.from, client, false);
            topo.set_edge(hop.to, client, true);
            topo.block_route(hop.from, self.client_addr);
            topo.unblock_route(hop.to, self.client_addr);
            topo.reroute_at(sim, hop.at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Context, Node};
    use bytecache_packet::Packet;

    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}
    }

    fn sim_with_nodes(n: usize) -> (Simulator, Vec<NodeId>) {
        let mut sim = Simulator::new(1);
        let ids = (0..n).map(|_| sim.add_node(Sink)).collect();
        (sim, ids)
    }

    fn addr(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn chain_routes_toward_both_ends() {
        let (mut sim, ids) = sim_with_nodes(4);
        let mut topo = Topology::chain(&mut sim, &ids, &LinkConfig::default());
        topo.bind(ids[0], addr(1));
        topo.bind(ids[3], addr(2));
        let routes = topo.compute_routes();
        // Everyone routes toward node 0 for addr(1) ...
        assert_eq!(routes[&(1, addr(1))], 0);
        assert_eq!(routes[&(2, addr(1))], 1);
        assert_eq!(routes[&(3, addr(1))], 2);
        // ... and toward node 3 for addr(2).
        assert_eq!(routes[&(0, addr(2))], 1);
        assert_eq!(routes[&(2, addr(2))], 3);
        assert_eq!(routes.len(), 6);
    }

    #[test]
    fn mesh_breaks_ties_toward_smallest_index() {
        let (mut sim, ids) = sim_with_nodes(4);
        let mut topo = Topology::mesh(&mut sim, &ids, &LinkConfig::default());
        topo.bind(ids[0], addr(1));
        let routes = topo.compute_routes();
        // Full mesh: every node is one hop from the owner.
        for node in 1..4 {
            assert_eq!(routes[&(node, addr(1))], 0);
        }
    }

    #[test]
    fn star_routes_via_hub() {
        let (mut sim, ids) = sim_with_nodes(4);
        let mut topo = Topology::star(&mut sim, ids[0], &ids[1..], &LinkConfig::default());
        topo.bind(ids[3], addr(9));
        let routes = topo.compute_routes();
        assert_eq!(routes[&(0, addr(9))], 3);
        assert_eq!(routes[&(1, addr(9))], 0);
        assert_eq!(routes[&(2, addr(9))], 0);
    }

    #[test]
    fn disabled_edge_forces_detour_and_unreachable_is_absent() {
        let (mut sim, ids) = sim_with_nodes(3);
        // Triangle; disable 0--2 so 2 reaches 0 via 1.
        let mut topo = Topology::mesh(&mut sim, &ids, &LinkConfig::default());
        topo.bind(ids[0], addr(1));
        topo.set_edge(ids[0], ids[2], false);
        let routes = topo.compute_routes();
        assert_eq!(routes[&(2, addr(1))], 1);
        // Disable the remaining path: 2 is cut off entirely.
        topo.set_edge(ids[1], ids[2], false);
        let routes = topo.compute_routes();
        assert!(!routes.contains_key(&(2, addr(1))));
        assert_eq!(routes[&(1, addr(1))], 0);
    }

    #[test]
    fn blocked_route_is_left_out_until_unblocked() {
        let (mut sim, ids) = sim_with_nodes(3);
        let mut topo = Topology::chain(&mut sim, &ids, &LinkConfig::default());
        topo.bind(ids[2], addr(5));
        topo.block_route(ids[1], addr(5));
        assert!(!topo.compute_routes().contains_key(&(1, addr(5))));
        topo.unblock_route(ids[1], addr(5));
        assert_eq!(topo.compute_routes()[&(1, addr(5))], 2);
    }

    #[test]
    fn reroute_diff_tracks_installed_state() {
        let (mut sim, ids) = sim_with_nodes(3);
        let mut topo = Topology::mesh(&mut sim, &ids, &LinkConfig::default());
        topo.bind(ids[0], addr(1));
        topo.install_routes(&mut sim);
        assert_eq!(topo.route_entries().len(), 2);
        // Flip the 0--2 edge off: node 2 now detours via 1; the diff is
        // exactly one change, and the recorded state reflects it.
        topo.set_edge(ids[0], ids[2], false);
        topo.reroute_at(&mut sim, SimTime::from_micros(50));
        let entries = topo.route_entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.contains(&(ids[2], addr(1), ids[1])));
    }

    #[test]
    fn recomputation_is_deterministic() {
        let build = || {
            let (mut sim, ids) = sim_with_nodes(6);
            let mut topo = Topology::mesh(&mut sim, &ids, &LinkConfig::default());
            topo.bind(ids[0], addr(1));
            topo.bind(ids[5], addr(2));
            topo.set_edge(ids[0], ids[5], false);
            topo.set_edge(ids[1], ids[4], false);
            format!("{:?}", topo.compute_routes())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn mobility_applies_edge_flips_blocks_and_diffs() {
        let (mut sim, ids) = sim_with_nodes(5);
        // 0 = server-side hub, 1..=3 gateways (mesh to hub), 4 = client.
        let cfg = LinkConfig::default();
        let mut topo = Topology::star(&mut sim, ids[0], &ids[1..4], &cfg);
        topo.connect(&mut sim, ids[1], ids[4], cfg.clone());
        topo.connect(&mut sim, ids[2], ids[4], cfg.clone());
        topo.connect(&mut sim, ids[3], ids[4], cfg);
        // Client starts attached to gateway 1 only.
        topo.set_edge(ids[2], ids[4], false);
        topo.set_edge(ids[3], ids[4], false);
        let client_addr = addr(40);
        topo.bind(ids[4], client_addr);
        topo.bind(ids[0], addr(1));
        topo.install_routes(&mut sim);
        assert_eq!(topo.compute_routes()[&(0, client_addr)], 1);

        let script = Mobility::new(client_addr)
            .hop(SimTime::from_micros(10_000), ids[1], ids[2])
            .hop(SimTime::from_micros(20_000), ids[2], ids[3]);
        script.apply(&mut topo, &mut sim);

        // Final state: attached at gateway 3, old gateways blocked/off.
        assert!(!topo.edge_enabled(ids[1], ids[4]));
        assert!(!topo.edge_enabled(ids[2], ids[4]));
        assert!(topo.edge_enabled(ids[3], ids[4]));
        let routes = topo.compute_routes();
        assert_eq!(routes[&(0, client_addr)], 3);
        assert!(!routes.contains_key(&(1, client_addr)));
        assert!(!routes.contains_key(&(2, client_addr)));
    }

    #[test]
    #[should_panic(expected = "unknown edge")]
    fn set_edge_rejects_unknown_pair() {
        let (mut sim, ids) = sim_with_nodes(3);
        let mut topo = Topology::chain(&mut sim, &ids[..2], &LinkConfig::default());
        topo.set_edge(ids[0], ids[2], false);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn bind_rejects_duplicate_addr() {
        let (mut sim, ids) = sim_with_nodes(2);
        let mut topo = Topology::chain(&mut sim, &ids, &LinkConfig::default());
        topo.bind(ids[0], addr(1));
        topo.bind(ids[1], addr(1));
    }
}
