//! Network-coded retransmission over the lossy hop (the competing
//! baseline from the network-coding literature).
//!
//! The paper's answer to wireless loss is to *eliminate less
//! redundancy* (cache flush); the network-coding line of work
//! (Kim/Médard/Barros's coded TCP model, Zhou et al.'s coded
//! retransmission) argues the opposite move: *add* coded redundancy
//! over the lossy segment so a loss is repaired in-flight, before TCP's
//! retransmission machinery ever notices. This module supplies that
//! baseline as a pair of [`Node`] middleboxes bracketing the lossy
//! link:
//!
//! * [`NcEncoderNode`] — groups the data-direction packets it forwards
//!   into blocks and, per block, emits one or two *repair* frames
//!   carrying the XOR parity of the block's (zero-padded) wire bytes.
//!   Block size adapts to an EWMA loss estimate fed back by the
//!   decoder, targeting a fixed expected number of losses per block.
//! * [`NcDecoderNode`] — remembers the wire bytes of recently forwarded
//!   data packets (keyed by content digest), substitutes them into
//!   arriving repair equations, and when exactly one block member is
//!   missing reconstructs it by XOR and forwards it — recovering the
//!   loss without an RTO. Periodically it reports (seen, lost) counts
//!   back to the encoder.
//!
//! # Wire shape
//!
//! Data packets traverse the pair *unchanged* — zero per-packet
//! overhead, and the coded baseline composes transparently with any
//! upstream middlebox. All NC control traffic rides in dedicated
//! TCP-shaped frames with both ports set to [`NC_PORT`] and a payload
//! magic, addressed to an endpoint beyond the peer so normal IP
//! routing carries them across the lossy hop (the peer consumes them).
//! Payload layouts (big-endian):
//!
//! ```text
//! repair:   magic u32 | 1u8 | block_id u32 | count u8 | mask u64 |
//!           plen u32 | (len u16, digest u64) * count | parity [plen]u8
//! feedback: magic u32 | 2u8 | seen u32 | lost u32
//! ```
//!
//! `mask` selects which block members (by index) the parity covers;
//! repair 0 always covers the whole block, an optional second repair
//! covers a deterministic pseudo-random subset so two losses in one
//! block are recoverable when the subset splits the pair. A member is
//! identified by the FNV-1a digest of its full wire bytes, and a
//! reconstructed packet must both re-hash to the advertised digest and
//! reparse with valid IP/TCP checksums before it is forwarded — a
//! mangled repair can therefore never surface as a corrupted delivery.
//!
//! # Determinism
//!
//! The pair draws nothing from any RNG: repair subsets come from a
//! splitmix64 hash of the block id, and every iteration that emits
//! packets walks ordered containers. Runs are byte-identical across
//! `ExecMode`/`QueueKind`/worker counts like every other node.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::Ipv4Addr;

use bytecache_packet::Packet;

use crate::node::{Context, Node};
use crate::time::SimDuration;

/// Port (both source and destination) marking NC control frames.
pub const NC_PORT: u16 = 0xBCED;
/// Leading payload magic of NC control frames.
pub const NC_MAGIC: u32 = 0xBCC0_DE01;

const TYPE_REPAIR: u8 = 1;
const TYPE_FEEDBACK: u8 = 2;

/// Fixed bytes of a repair payload before the member list and parity.
const REPAIR_HEADER_LEN: usize = 4 + 1 + 4 + 1 + 8 + 4;
/// Bytes per member in a repair's member list.
const MEMBER_LEN: usize = 2 + 8;

/// FNV-1a 64-bit content digest (also used for reconstruction checks).
fn fnv1a64(buf: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in buf {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// splitmix64 — the deterministic source of repair subset masks.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tuning of the coder pair (block sizing, feedback cadence, memory).
#[derive(Debug, Clone)]
pub struct NcTuning {
    /// Warm-start loss estimate (e.g. the provisioned channel's rate);
    /// refined by decoder feedback as the run progresses.
    pub initial_loss: f64,
    /// EWMA factor applied per feedback frame.
    pub alpha: f64,
    /// Block size is chosen so `block * p̂` stays near this.
    pub target_losses_per_block: f64,
    /// Smallest block (highest repair overhead).
    pub min_block: usize,
    /// Largest block (lowest overhead; capped at 64 by the mask width).
    pub max_block: usize,
    /// Emit a second (subset) repair per block once `p̂` reaches this.
    pub extra_repair_threshold: f64,
    /// Seal a partially filled block after this long without growth.
    pub flush_timeout: SimDuration,
    /// Decoder sends a feedback frame every this many blocks.
    pub feedback_every_blocks: u32,
    /// Decoder-side memory of recent packet wire bytes (digest count).
    pub ring_capacity: usize,
    /// Decoder-side bound on blocks awaiting recovery.
    pub max_pending_blocks: usize,
}

impl Default for NcTuning {
    fn default() -> Self {
        NcTuning {
            initial_loss: 0.0,
            alpha: 0.3,
            target_losses_per_block: 0.5,
            min_block: 2,
            max_block: 32,
            extra_repair_threshold: 0.06,
            flush_timeout: SimDuration::from_millis(30),
            feedback_every_blocks: 4,
            ring_capacity: 2048,
            max_pending_blocks: 64,
        }
    }
}

impl NcTuning {
    /// Block size implied by a loss estimate.
    fn block_size(&self, p_est: f64) -> usize {
        let max = self.max_block.clamp(1, 64);
        if p_est <= f64::EPSILON {
            return max;
        }
        let b = (self.target_losses_per_block / p_est).round() as i64;
        (b.max(self.min_block.max(1) as i64) as usize).min(max)
    }

    /// Repairs per block implied by a loss estimate.
    fn repairs(&self, p_est: f64) -> u32 {
        if p_est >= self.extra_repair_threshold {
            2
        } else {
            1
        }
    }
}

/// Addressing of one coder pair (both nodes take the same config).
#[derive(Debug, Clone)]
pub struct NcConfig {
    /// Packets addressed to this IP are the protected data direction;
    /// repair frames are addressed here too so they route across the
    /// lossy hop (the decoder node consumes them short of the host).
    pub data_dst: Ipv4Addr,
    /// Feedback frames are addressed here so they route back across
    /// the reverse hop (the encoder node consumes them).
    pub feedback_dst: Ipv4Addr,
    /// Source address stamped on originated frames (trace readability).
    pub src: Ipv4Addr,
    /// Tuning knobs.
    pub tuning: NcTuning,
}

/// Counters of one [`NcEncoderNode`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NcEncoderStats {
    /// Data-direction packets protected (and forwarded unchanged).
    pub data_packets: u64,
    /// Blocks sealed (each emitted >= 1 repair).
    pub blocks_sealed: u64,
    /// Blocks sealed by the flush timer rather than by filling up.
    pub timeout_seals: u64,
    /// Repair frames emitted.
    pub repairs_sent: u64,
    /// Repair payload bytes emitted (the coding overhead on the air).
    pub repair_bytes: u64,
    /// Feedback frames consumed.
    pub feedback_frames: u64,
}

/// Does this packet ride the reserved NC port pair? The pair claims
/// those ports outright: anything carrying them is consumed by the
/// coder nodes (valid frames are processed, garbage — e.g. a frame
/// whose magic got mangled — is counted and dropped, never forwarded
/// toward the endpoints).
fn is_nc_ports(packet: &Packet) -> bool {
    packet.tcp.src_port == NC_PORT && packet.tcp.dst_port == NC_PORT
}

/// The frame type, when the payload carries the NC magic.
fn nc_frame_type(packet: &Packet) -> Option<u8> {
    if !is_nc_ports(packet) {
        return None;
    }
    let p = &packet.payload;
    if p.len() < 5 || u32::from_be_bytes([p[0], p[1], p[2], p[3]]) != NC_MAGIC {
        return None;
    }
    Some(p[4])
}

/// Subset mask for repair `r` of a `count`-member block. Repair 0 is
/// the full-block parity; later repairs cover a pseudo-random nonempty
/// subset derived from the block id alone.
fn repair_mask(block_id: u32, r: u32, count: usize) -> u64 {
    let full = if count >= 64 {
        u64::MAX
    } else {
        (1u64 << count) - 1
    };
    if r == 0 {
        return full;
    }
    let m = splitmix64((u64::from(block_id) << 8) | u64::from(r)) & full;
    if m == 0 || m == full {
        // Degenerate subsets add no information over repair 0; flip the
        // low bit to get a proper nonempty strict subset when possible.
        if count > 1 {
            full ^ 1
        } else {
            full
        }
    } else {
        m
    }
}

/// Encoder-side middlebox: groups forwarded data packets into blocks
/// and emits XOR repair frames (see the module docs).
#[derive(Debug)]
pub struct NcEncoderNode {
    cfg: NcConfig,
    p_est: f64,
    block_id: u32,
    /// Wire bytes of the current block's members, in arrival order.
    members: Vec<Vec<u8>>,
    scratch: Vec<u8>,
    stats: NcEncoderStats,
}

impl NcEncoderNode {
    /// New encoder-side coder.
    #[must_use]
    pub fn new(cfg: NcConfig) -> Self {
        let p_est = cfg.tuning.initial_loss;
        NcEncoderNode {
            cfg,
            p_est,
            block_id: 0,
            members: Vec::new(),
            scratch: Vec::new(),
            stats: NcEncoderStats::default(),
        }
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> &NcEncoderStats {
        &self.stats
    }

    /// Current loss estimate (feedback EWMA over the warm start).
    #[must_use]
    pub fn estimated_loss(&self) -> f64 {
        self.p_est
    }

    fn seal_block(&mut self, ctx: &mut Context<'_>) {
        debug_assert!(!self.members.is_empty());
        let count = self.members.len();
        let plen = self.members.iter().map(Vec::len).max().unwrap_or(0);
        let repairs = self.cfg.tuning.repairs(self.p_est);
        for r in 0..repairs {
            let mask = repair_mask(self.block_id, r, count);
            if r > 0 && mask == repair_mask(self.block_id, 0, count) {
                continue; // single-member block: subset repair is a dup
            }
            let mut payload = Vec::with_capacity(REPAIR_HEADER_LEN + count * MEMBER_LEN + plen);
            payload.extend_from_slice(&NC_MAGIC.to_be_bytes());
            payload.push(TYPE_REPAIR);
            payload.extend_from_slice(&self.block_id.to_be_bytes());
            payload.push(count as u8);
            payload.extend_from_slice(&mask.to_be_bytes());
            payload.extend_from_slice(&(plen as u32).to_be_bytes());
            for m in &self.members {
                payload.extend_from_slice(&(m.len() as u16).to_be_bytes());
                payload.extend_from_slice(&fnv1a64(m).to_be_bytes());
            }
            let parity_start = payload.len();
            payload.resize(parity_start + plen, 0);
            for (i, m) in self.members.iter().enumerate() {
                if mask & (1u64 << i) != 0 {
                    for (j, &b) in m.iter().enumerate() {
                        payload[parity_start + j] ^= b;
                    }
                }
            }
            self.stats.repairs_sent += 1;
            self.stats.repair_bytes += payload.len() as u64;
            let frame = Packet::builder()
                .src(self.cfg.src, NC_PORT)
                .dst(self.cfg.data_dst, NC_PORT)
                .seq(self.block_id)
                .payload(payload)
                .build();
            ctx.forward(frame);
        }
        self.stats.blocks_sealed += 1;
        self.block_id = self.block_id.wrapping_add(1);
        self.members.clear();
    }
}

impl Node for NcEncoderNode {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if is_nc_ports(&packet) {
            if nc_frame_type(&packet) == Some(TYPE_FEEDBACK) && packet.payload.len() >= 13 {
                let p = &packet.payload;
                let seen = u32::from_be_bytes([p[5], p[6], p[7], p[8]]);
                let lost = u32::from_be_bytes([p[9], p[10], p[11], p[12]]);
                if seen > 0 {
                    let sample = f64::from(lost) / f64::from(seen);
                    let a = self.cfg.tuning.alpha;
                    self.p_est = (1.0 - a) * self.p_est + a * sample;
                }
                self.stats.feedback_frames += 1;
            }
            return; // NC-port frames terminate here, whatever their shape
        }
        if packet.ip.dst != self.cfg.data_dst {
            ctx.forward(packet); // reverse direction: untouched
            return;
        }
        self.scratch.clear();
        packet.write_bytes(&mut self.scratch);
        self.members.push(self.scratch.clone());
        self.stats.data_packets += 1;
        ctx.forward(packet);
        if self.members.len() >= self.cfg.tuning.block_size(self.p_est) {
            self.seal_block(ctx);
        } else if self.members.len() == 1 {
            // Arm the tail flush for this block; the token is the block
            // id, so a timer outliving its block is ignored.
            ctx.set_timer(self.cfg.tuning.flush_timeout, u64::from(self.block_id));
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if token == u64::from(self.block_id) && !self.members.is_empty() {
            self.stats.timeout_seals += 1;
            self.seal_block(ctx);
        }
    }
}

/// Counters of one [`NcDecoderNode`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NcDecoderStats {
    /// Data-direction packets forwarded (and remembered).
    pub data_packets: u64,
    /// Repair frames consumed.
    pub repair_frames: u64,
    /// Repair frames that failed structural parsing.
    pub malformed_repairs: u64,
    /// Lost packets reconstructed and forwarded.
    pub recovered: u64,
    /// Reconstructions rejected by the digest/checksum validation.
    pub recover_failed: u64,
    /// Block members missing when their first repair arrived (the loss
    /// signal reported upstream).
    pub losses_observed: u64,
    /// Members counted across accounted blocks (feedback denominator).
    pub members_seen: u64,
    /// Feedback frames emitted.
    pub feedback_sent: u64,
    /// Pending blocks dropped by the memory bound.
    pub blocks_evicted: u64,
}

/// One unresolved repair equation: XOR of the members still missing.
#[derive(Debug)]
struct Equation {
    /// Bit i set ⇔ member i not yet substituted out.
    mask_remaining: u64,
    parity: Vec<u8>,
}

/// A block with repairs received and losses not yet resolved.
#[derive(Debug)]
struct PendingBlock {
    /// (wire length, digest) per member, in encoder arrival order.
    members: Vec<(u16, u64)>,
    equations: Vec<Equation>,
}

/// Decoder-side middlebox: remembers forwarded packets, consumes
/// repair frames, reconstructs missing members (see the module docs).
#[derive(Debug)]
pub struct NcDecoderNode {
    cfg: NcConfig,
    /// digest → full wire bytes of a recently seen data packet.
    ring: HashMap<u64, Vec<u8>>,
    ring_order: VecDeque<u64>,
    /// Blocks with outstanding equations, ordered by block id.
    blocks: BTreeMap<u32, PendingBlock>,
    /// Recently resolved/abandoned block ids (ignore their late repairs).
    done: VecDeque<u32>,
    /// Feedback accumulators.
    fb_seen: u32,
    fb_lost: u32,
    fb_blocks: u32,
    scratch: Vec<u8>,
    stats: NcDecoderStats,
}

impl NcDecoderNode {
    /// New decoder-side coder.
    #[must_use]
    pub fn new(cfg: NcConfig) -> Self {
        NcDecoderNode {
            cfg,
            ring: HashMap::new(),
            ring_order: VecDeque::new(),
            blocks: BTreeMap::new(),
            done: VecDeque::new(),
            fb_seen: 0,
            fb_lost: 0,
            fb_blocks: 0,
            scratch: Vec::new(),
            stats: NcDecoderStats::default(),
        }
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> &NcDecoderStats {
        &self.stats
    }

    fn remember(&mut self, digest: u64, wire: Vec<u8>) {
        if self.ring.insert(digest, wire).is_none() {
            self.ring_order.push_back(digest);
            while self.ring_order.len() > self.cfg.tuning.ring_capacity {
                if let Some(old) = self.ring_order.pop_front() {
                    self.ring.remove(&old);
                }
            }
        }
    }

    fn mark_done(&mut self, block_id: u32) {
        self.done.push_back(block_id);
        while self.done.len() > 128 {
            self.done.pop_front();
        }
    }

    /// Substitute known members into every pending equation and forward
    /// whatever becomes reconstructable, to fixpoint. Any recovery makes
    /// a new digest known, so the sweep restarts until nothing moves.
    fn reduce_all(&mut self, ctx: &mut Context<'_>) {
        loop {
            let mut recovered_any = false;
            let mut resolved_blocks: Vec<u32> = Vec::new();
            let mut newly_known: Vec<(u64, Vec<u8>)> = Vec::new();
            // BTreeMap iteration keeps block order deterministic.
            let block_ids: Vec<u32> = self.blocks.keys().copied().collect();
            for bid in block_ids {
                let Some(block) = self.blocks.get_mut(&bid) else {
                    continue;
                };
                let mut eq_idx = 0;
                while eq_idx < block.equations.len() {
                    let eq = &mut block.equations[eq_idx];
                    // Substitute every member we hold bytes for.
                    let mut bit = 0;
                    while bit < block.members.len() {
                        let mask_bit = 1u64 << bit;
                        if eq.mask_remaining & mask_bit != 0 {
                            let (_, digest) = block.members[bit];
                            if let Some(wire) = self.ring.get(&digest) {
                                for (j, &b) in wire.iter().enumerate() {
                                    if j < eq.parity.len() {
                                        eq.parity[j] ^= b;
                                    }
                                }
                                eq.mask_remaining &= !mask_bit;
                            }
                        }
                        bit += 1;
                    }
                    match eq.mask_remaining.count_ones() {
                        0 => {
                            // Fully cancelled: carried no new information.
                            block.equations.swap_remove(eq_idx);
                        }
                        1 => {
                            let i = eq.mask_remaining.trailing_zeros() as usize;
                            let (len, digest) = block.members[i];
                            let wire = &eq.parity[..usize::from(len).min(eq.parity.len())];
                            // A reconstruction must re-hash to the
                            // advertised digest AND reparse with valid
                            // checksums; anything else is discarded, so
                            // a garbled repair cannot corrupt delivery.
                            if fnv1a64(wire) == digest {
                                if let Ok(packet) = Packet::from_bytes(wire) {
                                    self.stats.recovered += 1;
                                    newly_known.push((digest, wire.to_vec()));
                                    ctx.forward(packet);
                                    recovered_any = true;
                                } else {
                                    self.stats.recover_failed += 1;
                                }
                            } else {
                                self.stats.recover_failed += 1;
                            }
                            block.equations.swap_remove(eq_idx);
                        }
                        _ => eq_idx += 1,
                    }
                }
                if block.equations.is_empty() {
                    resolved_blocks.push(bid);
                }
            }
            for (digest, wire) in newly_known {
                self.remember(digest, wire);
            }
            for bid in resolved_blocks {
                self.blocks.remove(&bid);
                self.mark_done(bid);
            }
            if !recovered_any {
                return;
            }
        }
    }

    fn on_repair(&mut self, payload: &[u8], ctx: &mut Context<'_>) {
        self.stats.repair_frames += 1;
        let Some((block_id, members, equation)) = parse_repair(payload) else {
            self.stats.malformed_repairs += 1;
            return;
        };
        if self.done.contains(&block_id) {
            return; // late extra repair of an already-settled block
        }
        let known_block = self.blocks.contains_key(&block_id);
        if !known_block {
            // First repair for this block: account the loss snapshot
            // (members whose bytes never arrived) for feedback.
            let lost = members
                .iter()
                .filter(|(_, d)| !self.ring.contains_key(d))
                .count() as u32;
            self.fb_seen += members.len() as u32;
            self.fb_lost += lost;
            self.fb_blocks += 1;
            self.stats.members_seen += u64::from(members.len() as u32);
            self.stats.losses_observed += u64::from(lost);
            self.blocks.insert(
                block_id,
                PendingBlock {
                    members,
                    equations: Vec::new(),
                },
            );
            while self.blocks.len() > self.cfg.tuning.max_pending_blocks {
                // Oldest block first: its members have long fallen out
                // of the ring, recovery is no longer realistic.
                if let Some((&oldest, _)) = self.blocks.iter().next() {
                    self.blocks.remove(&oldest);
                    self.mark_done(oldest);
                    self.stats.blocks_evicted += 1;
                }
            }
        }
        if let Some(block) = self.blocks.get_mut(&block_id) {
            block.equations.push(equation);
        }
        self.reduce_all(ctx);
        if self.fb_blocks >= self.cfg.tuning.feedback_every_blocks {
            let mut payload = Vec::with_capacity(13);
            payload.extend_from_slice(&NC_MAGIC.to_be_bytes());
            payload.push(TYPE_FEEDBACK);
            payload.extend_from_slice(&self.fb_seen.to_be_bytes());
            payload.extend_from_slice(&self.fb_lost.to_be_bytes());
            let frame = Packet::builder()
                .src(self.cfg.src, NC_PORT)
                .dst(self.cfg.feedback_dst, NC_PORT)
                .payload(payload)
                .build();
            ctx.forward(frame);
            self.stats.feedback_sent += 1;
            self.fb_seen = 0;
            self.fb_lost = 0;
            self.fb_blocks = 0;
        }
    }
}

/// `(block_id, members, equation)` of a structurally valid repair.
type ParsedRepair = (u32, Vec<(u16, u64)>, Equation);

/// Structural parse of a repair payload (past magic + type).
fn parse_repair(p: &[u8]) -> Option<ParsedRepair> {
    if p.len() < REPAIR_HEADER_LEN {
        return None;
    }
    let block_id = u32::from_be_bytes([p[5], p[6], p[7], p[8]]);
    let count = usize::from(p[9]);
    let mask = u64::from_be_bytes(p[10..18].try_into().ok()?);
    let plen = u32::from_be_bytes(p[18..22].try_into().ok()?) as usize;
    if count == 0 || count > 64 {
        return None;
    }
    let full = if count >= 64 {
        u64::MAX
    } else {
        (1u64 << count) - 1
    };
    if mask == 0 || mask & !full != 0 {
        return None;
    }
    let member_end = REPAIR_HEADER_LEN + count * MEMBER_LEN;
    if p.len() != member_end + plen {
        return None;
    }
    let mut members = Vec::with_capacity(count);
    for i in 0..count {
        let off = REPAIR_HEADER_LEN + i * MEMBER_LEN;
        let len = u16::from_be_bytes([p[off], p[off + 1]]);
        let digest = u64::from_be_bytes(p[off + 2..off + 10].try_into().ok()?);
        if usize::from(len) > plen {
            return None;
        }
        members.push((len, digest));
    }
    let equation = Equation {
        mask_remaining: mask,
        parity: p[member_end..].to_vec(),
    };
    Some((block_id, members, equation))
}

impl Node for NcDecoderNode {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if is_nc_ports(&packet) {
            match nc_frame_type(&packet) {
                Some(TYPE_REPAIR) => {
                    let payload = packet.payload.clone();
                    self.on_repair(&payload, ctx);
                }
                Some(_) => {} // feedback passing by: not ours, consume
                None => self.stats.malformed_repairs += 1,
            }
            return;
        }
        if packet.ip.dst != self.cfg.data_dst {
            ctx.forward(packet); // reverse direction: untouched
            return;
        }
        self.scratch.clear();
        packet.write_bytes(&mut self.scratch);
        let digest = fnv1a64(&self.scratch);
        let wire = std::mem::take(&mut self.scratch);
        self.remember(digest, wire);
        self.stats.data_packets += 1;
        ctx.forward(packet);
        if !self.blocks.is_empty() {
            // A late (reordered) member can complete an open equation.
            self.reduce_all(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Action;
    use crate::time::SimTime;
    use std::net::Ipv4Addr;

    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn cfg(tuning: NcTuning) -> NcConfig {
        NcConfig {
            data_dst: CLIENT,
            feedback_dst: SERVER,
            src: Ipv4Addr::new(10, 0, 3, 1),
            tuning,
        }
    }

    fn data_packet(seq: u32, fill: u8, len: usize) -> Packet {
        Packet::builder()
            .src(SERVER, 80)
            .dst(CLIENT, 40_000)
            .seq(seq)
            .payload(vec![fill; len])
            .build()
    }

    /// Drive a node callback and collect the emitted packets.
    fn deliver(node: &mut dyn Node, packet: Packet) -> Vec<Packet> {
        let mut actions = Vec::new();
        let mut ctx = Context {
            now: SimTime::from_micros(0),
            node: crate::node::NodeId(0),
            actions: &mut actions,
        };
        node.on_packet(packet, &mut ctx);
        actions
            .into_iter()
            .filter_map(|a| match a {
                Action::Forward(p) => Some(p),
                Action::Timer(..) => None,
            })
            .collect()
    }

    fn fire_timer(node: &mut dyn Node, token: u64) -> Vec<Packet> {
        let mut actions = Vec::new();
        let mut ctx = Context {
            now: SimTime::from_micros(0),
            node: crate::node::NodeId(0),
            actions: &mut actions,
        };
        node.on_timer(token, &mut ctx);
        actions
            .into_iter()
            .filter_map(|a| match a {
                Action::Forward(p) => Some(p),
                Action::Timer(..) => None,
            })
            .collect()
    }

    /// Fixed-size blocks, single repair, for predictable tests.
    fn fixed_tuning(block: usize) -> NcTuning {
        NcTuning {
            initial_loss: 0.01,
            min_block: block,
            max_block: block,
            extra_repair_threshold: 1.1, // never a second repair
            ..NcTuning::default()
        }
    }

    #[test]
    fn single_loss_in_a_block_is_recovered() {
        let t = fixed_tuning(4);
        let mut enc = NcEncoderNode::new(cfg(t.clone()));
        let mut dec = NcDecoderNode::new(cfg(t));
        let mut emitted: Vec<Packet> = Vec::new();
        for i in 0..4u32 {
            emitted.extend(deliver(
                &mut enc,
                data_packet(1000 + i * 100, i as u8, 40 + i as usize),
            ));
        }
        // 4 data packets + 1 repair.
        assert_eq!(emitted.len(), 5);
        assert_eq!(enc.stats().blocks_sealed, 1);
        let lost_idx = 2;
        let lost_original = emitted[lost_idx].clone();
        let mut out: Vec<Packet> = Vec::new();
        for (i, p) in emitted.into_iter().enumerate() {
            if i == lost_idx {
                continue; // the channel ate this one
            }
            out.extend(deliver(&mut dec, p));
        }
        assert_eq!(dec.stats().recovered, 1);
        assert_eq!(dec.stats().recover_failed, 0);
        // 3 surviving data packets + the reconstruction; no repair leaks.
        assert_eq!(out.len(), 4);
        let recovered = out.last().unwrap();
        assert_eq!(recovered, &lost_original);
    }

    #[test]
    fn zero_loss_costs_nothing_downstream() {
        let t = fixed_tuning(4);
        let mut enc = NcEncoderNode::new(cfg(t.clone()));
        let mut dec = NcDecoderNode::new(cfg(t));
        for i in 0..8u32 {
            for p in deliver(&mut enc, data_packet(5000 + i * 50, i as u8, 30)) {
                for q in deliver(&mut dec, p) {
                    // Everything reaching the client is a data packet,
                    // byte-identical to what the encoder saw.
                    assert_eq!(q.tcp.dst_port, 40_000);
                }
            }
        }
        assert_eq!(dec.stats().recovered, 0);
        assert_eq!(dec.stats().losses_observed, 0);
        assert_eq!(dec.stats().repair_frames, 2);
    }

    #[test]
    fn corrupted_repair_never_yields_a_corrupt_delivery() {
        let t = fixed_tuning(3);
        let mut enc = NcEncoderNode::new(cfg(t.clone()));
        let mut emitted: Vec<Packet> = Vec::new();
        for i in 0..3u32 {
            emitted.extend(deliver(&mut enc, data_packet(1000 + i * 100, i as u8, 60)));
        }
        let repair = emitted.pop().unwrap();
        assert_eq!(nc_frame_type(&repair), Some(TYPE_REPAIR));
        // Corrupt one parity byte in every possible position, replay the
        // block each time with one member lost: the decoder must never
        // forward a packet that differs from the true original.
        let lost = emitted.remove(1);
        for corrupt_at in 0..repair.payload.len() {
            let t = fixed_tuning(3);
            let mut dec = NcDecoderNode::new(cfg(t));
            let mut bad = repair.payload.to_vec();
            bad[corrupt_at] ^= 0x5A;
            let bad_repair = repair.with_payload(bad);
            let mut out: Vec<Packet> = Vec::new();
            for p in &emitted {
                out.extend(deliver(&mut dec, p.clone()));
            }
            out.extend(deliver(&mut dec, bad_repair));
            for p in out {
                assert!(
                    p == emitted[0] || p == emitted[1] || p == lost,
                    "corruption at {corrupt_at} forwarded a mangled packet"
                );
            }
        }
    }

    #[test]
    fn double_loss_with_single_repair_is_not_recovered() {
        let t = fixed_tuning(4);
        let mut enc = NcEncoderNode::new(cfg(t.clone()));
        let mut dec = NcDecoderNode::new(cfg(t));
        let mut emitted: Vec<Packet> = Vec::new();
        for i in 0..4u32 {
            emitted.extend(deliver(&mut enc, data_packet(1000 + i * 100, i as u8, 40)));
        }
        let mut out: Vec<Packet> = Vec::new();
        for (i, p) in emitted.into_iter().enumerate() {
            if i == 1 || i == 2 {
                continue; // two members lost, one equation: unsolvable
            }
            out.extend(deliver(&mut dec, p));
        }
        assert_eq!(dec.stats().recovered, 0);
        assert_eq!(dec.stats().losses_observed, 2);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn tail_block_is_sealed_by_the_flush_timer() {
        let t = fixed_tuning(8);
        let mut enc = NcEncoderNode::new(cfg(t));
        let forwarded = deliver(&mut enc, data_packet(1000, 7, 50));
        assert_eq!(forwarded.len(), 1, "no repair before the block fills");
        // The timer token is the block id the packet opened.
        let frames = fire_timer(&mut enc, 0);
        assert_eq!(frames.len(), 1);
        assert_eq!(nc_frame_type(&frames[0]), Some(TYPE_REPAIR));
        assert_eq!(enc.stats().timeout_seals, 1);
        // A stale token (block already sealed) is ignored.
        assert!(fire_timer(&mut enc, 0).is_empty());
    }

    #[test]
    fn feedback_raises_the_loss_estimate_and_shrinks_blocks() {
        let t = NcTuning {
            initial_loss: 0.0,
            feedback_every_blocks: 1,
            ..NcTuning::default()
        };
        let mut enc = NcEncoderNode::new(cfg(t.clone()));
        let mut dec = NcDecoderNode::new(cfg(t.clone()));
        assert_eq!(enc.cfg.tuning.block_size(enc.p_est), 32);
        // Transfer one full block, dropping half its members.
        let mut emitted: Vec<Packet> = Vec::new();
        for i in 0..32u32 {
            emitted.extend(deliver(&mut enc, data_packet(1000 + i * 100, i as u8, 20)));
        }
        let mut feedback: Vec<Packet> = Vec::new();
        for (i, p) in emitted.into_iter().enumerate() {
            if i % 2 == 1 && nc_frame_type(&p).is_none() {
                continue;
            }
            feedback.extend(
                deliver(&mut dec, p)
                    .into_iter()
                    .filter(|q| nc_frame_type(q) == Some(TYPE_FEEDBACK)),
            );
        }
        assert_eq!(feedback.len(), 1, "one feedback frame per block");
        let before = enc.estimated_loss();
        for f in feedback {
            assert!(deliver(&mut enc, f).is_empty(), "feedback is consumed");
        }
        assert!(enc.estimated_loss() > before + 0.1);
        assert!(enc.cfg.tuning.block_size(enc.p_est) < 8);
        assert_eq!(enc.stats().feedback_frames, 1);
    }

    #[test]
    fn reverse_traffic_passes_both_nodes_untouched() {
        let t = NcTuning::default();
        let mut enc = NcEncoderNode::new(cfg(t.clone()));
        let mut dec = NcDecoderNode::new(cfg(t));
        let ack = Packet::builder()
            .src(CLIENT, 40_000)
            .dst(SERVER, 80)
            .seq(1)
            .ack_num(4000)
            .payload(Vec::new())
            .build();
        let via_dec = deliver(&mut dec, ack.clone());
        assert_eq!(via_dec, vec![ack.clone()]);
        let via_enc = deliver(&mut enc, ack.clone());
        assert_eq!(via_enc, vec![ack]);
        assert_eq!(enc.stats().data_packets, 0);
        assert_eq!(dec.stats().data_packets, 0);
    }

    #[test]
    fn late_member_completes_an_open_equation() {
        // Repair arrives BEFORE a reordered member: once the member
        // shows up, the pending equation resolves the remaining loss.
        let t = fixed_tuning(3);
        let mut enc = NcEncoderNode::new(cfg(t.clone()));
        let mut dec = NcDecoderNode::new(cfg(t));
        let mut emitted: Vec<Packet> = Vec::new();
        for i in 0..3u32 {
            emitted.extend(deliver(&mut enc, data_packet(1000 + i * 100, i as u8, 40)));
        }
        let repair = emitted.pop().unwrap();
        let lost_original = emitted[0].clone();
        // Member 0 lost, member 1 delivered, repair, then member 2 late.
        let mut out = deliver(&mut dec, emitted[1].clone());
        out.extend(deliver(&mut dec, repair));
        assert_eq!(dec.stats().recovered, 0, "two unknowns: must wait");
        out.extend(deliver(&mut dec, emitted[2].clone()));
        assert_eq!(dec.stats().recovered, 1);
        assert!(out.contains(&lost_original));
    }

    #[test]
    fn mask_derivation_is_deterministic_and_in_range() {
        for count in 1..=64usize {
            let full = if count >= 64 {
                u64::MAX
            } else {
                (1u64 << count) - 1
            };
            for bid in [0u32, 1, 77, u32::MAX] {
                assert_eq!(repair_mask(bid, 0, count), full);
                let m = repair_mask(bid, 1, count);
                assert_eq!(m, repair_mask(bid, 1, count));
                assert!(m != 0 && m & !full == 0);
            }
        }
    }
}
