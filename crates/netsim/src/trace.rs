//! Optional event tracing for debugging and demonstration binaries.

use bytecache_packet::Packet;

use crate::node::NodeId;
use crate::time::SimTime;

/// A notable simulator event, passed to the installed [`TraceSink`].
#[derive(Debug)]
pub enum TraceEvent<'a> {
    /// A node offered a packet to a link.
    Transmit {
        /// Time of transmission start.
        at: SimTime,
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// The packet.
        packet: &'a Packet,
    },
    /// The channel dropped a packet.
    Lost {
        /// Time of the drop decision.
        at: SimTime,
        /// Transmitting node.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// The packet.
        packet: &'a Packet,
    },
    /// The channel corrupted a packet (it will fail checksums downstream).
    Corrupted {
        /// Time of the corruption decision.
        at: SimTime,
        /// Transmitting node.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The packet (pre-corruption form).
        packet: &'a Packet,
    },
    /// A packet arrived intact at a node.
    Deliver {
        /// Arrival time.
        at: SimTime,
        /// Receiving node.
        to: NodeId,
        /// The packet.
        packet: &'a Packet,
    },
    /// A packet had no route at a node and was discarded.
    NoRoute {
        /// Time of the routing failure.
        at: SimTime,
        /// Node lacking the route.
        from: NodeId,
        /// The packet.
        packet: &'a Packet,
    },
}

/// Receiver for [`TraceEvent`]s (install with
/// [`Simulator::set_trace`](crate::Simulator::set_trace)).
pub trait TraceSink {
    /// Handle one event. Called synchronously from the event loop.
    fn event(&mut self, event: &TraceEvent<'_>);
}

/// A `TraceSink` that forwards each event to a closure.
pub struct FnTrace<F: FnMut(&TraceEvent<'_>)>(pub F);

impl<F: FnMut(&TraceEvent<'_>)> TraceSink for FnTrace<F> {
    fn event(&mut self, event: &TraceEvent<'_>) {
        (self.0)(event);
    }
}
