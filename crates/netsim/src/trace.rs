//! Optional event tracing for debugging and demonstration binaries.

use bytecache_packet::Packet;

use crate::node::NodeId;
use crate::time::SimTime;

/// A notable simulator event, passed to the installed [`TraceSink`].
#[derive(Debug)]
pub enum TraceEvent<'a> {
    /// A node offered a packet to a link.
    Transmit {
        /// Time of transmission start.
        at: SimTime,
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// The packet.
        packet: &'a Packet,
    },
    /// The channel dropped a packet.
    Lost {
        /// Time of the drop decision.
        at: SimTime,
        /// Transmitting node.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// The packet.
        packet: &'a Packet,
    },
    /// The channel corrupted a packet (it will fail checksums downstream).
    Corrupted {
        /// Time of the corruption decision.
        at: SimTime,
        /// Transmitting node.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The packet (pre-corruption form).
        packet: &'a Packet,
    },
    /// A packet arrived intact at a node.
    Deliver {
        /// Arrival time.
        at: SimTime,
        /// Receiving node.
        to: NodeId,
        /// The packet.
        packet: &'a Packet,
    },
    /// A packet had no route at a node and was discarded.
    NoRoute {
        /// Time of the routing failure.
        at: SimTime,
        /// Node lacking the route.
        from: NodeId,
        /// The packet.
        packet: &'a Packet,
    },
}

/// An owned [`TraceEvent`], recorded by a parallel worker and replayed
/// into the main-thread sink in deterministic order after the run
/// (sinks are not required to be `Send`, so they never leave the
/// caller's thread).
#[derive(Debug, Clone)]
pub(crate) enum OwnedTraceEvent {
    Transmit {
        at: SimTime,
        from: NodeId,
        to: NodeId,
        packet: Packet,
    },
    Lost {
        at: SimTime,
        from: NodeId,
        to: NodeId,
        packet: Packet,
    },
    Corrupted {
        at: SimTime,
        from: NodeId,
        to: NodeId,
        packet: Packet,
    },
    Deliver {
        at: SimTime,
        to: NodeId,
        packet: Packet,
    },
    NoRoute {
        at: SimTime,
        from: NodeId,
        packet: Packet,
    },
}

impl OwnedTraceEvent {
    /// Feed this event to a sink in the borrowed form it expects.
    pub(crate) fn replay(&self, sink: &mut dyn TraceSink) {
        match self {
            OwnedTraceEvent::Transmit {
                at,
                from,
                to,
                packet,
            } => sink.event(&TraceEvent::Transmit {
                at: *at,
                from: *from,
                to: *to,
                packet,
            }),
            OwnedTraceEvent::Lost {
                at,
                from,
                to,
                packet,
            } => sink.event(&TraceEvent::Lost {
                at: *at,
                from: *from,
                to: *to,
                packet,
            }),
            OwnedTraceEvent::Corrupted {
                at,
                from,
                to,
                packet,
            } => sink.event(&TraceEvent::Corrupted {
                at: *at,
                from: *from,
                to: *to,
                packet,
            }),
            OwnedTraceEvent::Deliver { at, to, packet } => sink.event(&TraceEvent::Deliver {
                at: *at,
                to: *to,
                packet,
            }),
            OwnedTraceEvent::NoRoute { at, from, packet } => sink.event(&TraceEvent::NoRoute {
                at: *at,
                from: *from,
                packet,
            }),
        }
    }
}

/// Receiver for [`TraceEvent`]s (install with
/// [`Simulator::set_trace`](crate::Simulator::set_trace)).
pub trait TraceSink {
    /// Handle one event. Called synchronously from the event loop.
    fn event(&mut self, event: &TraceEvent<'_>);
}

/// A `TraceSink` that forwards each event to a closure.
pub struct FnTrace<F: FnMut(&TraceEvent<'_>)>(pub F);

impl<F: FnMut(&TraceEvent<'_>)> TraceSink for FnTrace<F> {
    fn event(&mut self, event: &TraceEvent<'_>) {
        (self.0)(event);
    }
}

/// Bridge from the legacy [`TraceSink`] interface onto the telemetry
/// event ring, so harnesses that read simulator traces (stall traces,
/// Figures 4–5 demonstrations) and metrics snapshots consume one event
/// source.
///
/// The sink owns a shared handle to a [`Recorder`]; install it with
/// [`Simulator::set_trace`](crate::Simulator::set_trace) and keep a
/// clone of the handle to inspect or merge after the run:
///
/// ```
/// use bytecache_netsim::{Simulator, TelemetrySink};
///
/// let mut sim = Simulator::new(1);
/// let sink = TelemetrySink::new();
/// let recorder = sink.recorder();
/// sim.set_trace(Box::new(sink));
/// // ... run ...
/// let snapshot = recorder.borrow().clone();
/// ```
///
/// Mapping: `Lost` → [`EventKind::PacketLost`], `Corrupted` →
/// [`EventKind::PacketCorrupted`], `NoRoute` → [`EventKind::NoRoute`]
/// (each with the flow tag and event time); `Transmit` / `Deliver` are
/// counted (`trace.transmits` / `trace.delivers`) but not ringed — they
/// are too frequent to keep individually.
pub struct TelemetrySink {
    recorder: std::rc::Rc<std::cell::RefCell<bytecache_telemetry::Recorder>>,
}

impl TelemetrySink {
    /// New bridge with a fresh enabled recorder.
    #[must_use]
    pub fn new() -> Self {
        TelemetrySink {
            recorder: std::rc::Rc::new(std::cell::RefCell::new(
                bytecache_telemetry::Recorder::enabled(),
            )),
        }
    }

    /// A shared handle to the recorder the sink writes into.
    #[must_use]
    pub fn recorder(&self) -> std::rc::Rc<std::cell::RefCell<bytecache_telemetry::Recorder>> {
        std::rc::Rc::clone(&self.recorder)
    }
}

impl Default for TelemetrySink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for TelemetrySink {
    fn event(&mut self, event: &TraceEvent<'_>) {
        use bytecache_telemetry::{Event, EventKind};
        let mut rec = self.recorder.borrow_mut();
        match event {
            TraceEvent::Transmit { .. } => rec.count("trace.transmits", 1),
            TraceEvent::Deliver { .. } => rec.count("trace.delivers", 1),
            TraceEvent::Lost {
                at, from, packet, ..
            } => rec.event(
                Event::new(EventKind::PacketLost)
                    .at_us(at.as_micros())
                    .flow(packet.flow().stable_hash())
                    .details(from.0 as u64, packet.wire_len() as u64),
            ),
            TraceEvent::Corrupted {
                at, from, packet, ..
            } => rec.event(
                Event::new(EventKind::PacketCorrupted)
                    .at_us(at.as_micros())
                    .flow(packet.flow().stable_hash())
                    .details(from.0 as u64, packet.wire_len() as u64),
            ),
            TraceEvent::NoRoute { at, from, packet } => rec.event(
                Event::new(EventKind::NoRoute)
                    .at_us(at.as_micros())
                    .flow(packet.flow().stable_hash())
                    .details(from.0 as u64, 0),
            ),
        }
    }
}
