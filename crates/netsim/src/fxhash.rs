//! A tiny deterministic multiply-fold hasher for the per-hop route
//! lookup.
//!
//! `route_and_transmit` does one `HashMap<Ipv4Addr, NodeId>` probe per
//! forwarded packet, which makes the hash function itself hot-path
//! cost. `SipHash` (std's default) burns ~1 round per byte plus
//! finalization to defend against HashDoS — pointless here, since
//! route keys come from the experiment topology, not an adversary.
//! This is the `FxHash` fold (rustc's internal table hasher): one
//! wrapping multiply per written word. It is also *deterministic
//! across processes* (no per-process seed), which keeps any incidental
//! iteration-order dependence reproducible run-to-run — `RandomState`
//! would not.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::net::Ipv4Addr;

use crate::node::NodeId;

/// The odd multiplier from Firefox/rustc's FxHash (64-bit).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time multiply-fold hasher. Not HashDoS-resistant;
/// only for maps keyed by trusted, fixed-at-build-time values.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Ipv4Addr hashes as one 4-byte write (plus a length prefix
        // via `write_usize`); fold whole 8-byte words where possible.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Deterministic `BuildHasher` for [`FxHasher`].
pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;

/// Per-node routing table: destination address → next hop.
pub(crate) type RouteMap = HashMap<Ipv4Addr, NodeId, FxBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_map_round_trips_and_is_deterministic() {
        let mut m = RouteMap::default();
        for i in 0..1000u32 {
            m.insert(Ipv4Addr::from(i), NodeId(i as usize));
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&Ipv4Addr::from(i)), Some(&NodeId(i as usize)));
        }
        let h1 = {
            let mut h = FxHasher::default();
            h.write_u64(0xdead_beef);
            h.finish()
        };
        let h2 = {
            let mut h = FxHasher::default();
            h.write_u64(0xdead_beef);
            h.finish()
        };
        assert_eq!(h1, h2);
    }
}
