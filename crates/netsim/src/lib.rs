//! Deterministic discrete-event network simulator.
//!
//! This crate is the testbed substitute for the paper's physical setup
//! (server → byte caching encoder → rate-limited lossy link → decoder →
//! client). It simulates:
//!
//! * **Nodes** ([`Node`]) — protocol endpoints and middleboxes that react
//!   to packets and timers.
//! * **Links** ([`LinkConfig`]) — unidirectional pipes with a serialization
//!   rate (the paper's 1 MB/s traffic shaper), propagation delay, and a
//!   [`channel`] model injecting loss (Bernoulli or bursty
//!   Gilbert–Elliott), corruption, and reordering.
//! * **Routing** — per-node static routes by destination IP, so
//!   middleboxes forward like real IP routers and the mobility scenario
//!   (Section II of the paper) is a pair of scheduled route changes.
//!
//! Everything is event-driven and every random decision flows from a
//! caller-provided seed, so a simulation is exactly reproducible —
//! crucial for the paper's experiments, which compare encoding policies
//! on *identical* channel realizations.
//!
//! # Execution modes
//!
//! The simulator runs in one of three [`ExecMode`]s (default
//! [`ExecMode::Serial`], the original single-threaded loop). The
//! deterministic pair — [`ExecMode::SerialDet`] (the oracle) and
//! [`ExecMode::Parallel`] (a conservative PDES across worker threads,
//! using per-link propagation delay as lookahead) — order same-time
//! events by `(origin node, per-origin seq)` and draw channel
//! randomness from per-link RNG streams, so their output is
//! byte-identical to each other at any worker count and for any
//! partition.
//!
//! # Example
//!
//! ```
//! use bytecache_netsim::Simulator;
//!
//! let mut sim = Simulator::new(7);
//! // ... add nodes, links and routes, then:
//! sim.run_until_idle();
//! assert_eq!(sim.now().as_micros(), 0); // nothing was scheduled
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod nc;
pub mod time;

mod engine;
mod fxhash;
mod link;
mod node;
mod partition;
mod sim;
mod stats;
mod synchronizer;
pub mod topology;
mod trace;
mod wheel;
mod worker;

pub use link::{LinkConfig, LinkId};
pub use node::{Action, Context, Node, NodeId};
pub use sim::{AsAny, ExecMode, Simulator};
pub use stats::LinkStats;
pub use topology::{Hop, Mobility, Topology};
pub use trace::{FnTrace, TelemetrySink, TraceEvent, TraceSink};
pub use wheel::{replay_schedule, QueueKind, ScheduleOp};
