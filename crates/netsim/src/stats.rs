//! Per-link traffic counters.

use serde::{Deserialize, Serialize};

/// Counters maintained by every link; the experiments' "bytes sent" and
/// loss-rate figures are read from here.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets offered to the link by the upstream node.
    pub packets_offered: u64,
    /// Bytes offered (wire length, headers included).
    pub bytes_offered: u64,
    /// Packets delivered intact to the downstream node.
    pub packets_delivered: u64,
    /// Bytes delivered intact.
    pub bytes_delivered: u64,
    /// Packets dropped by the loss process.
    pub packets_lost: u64,
    /// Packets delivered with corrupted contents (dropped downstream by
    /// checksum).
    pub packets_corrupted: u64,
    /// Packets delivered late (reordered).
    pub packets_reordered: u64,
    /// Packets delivered twice (duplicated by the channel). Only the
    /// on-time original is counted in `packets_delivered`.
    pub packets_duplicated: u64,
}

impl LinkStats {
    /// Fraction of offered packets the loss process dropped.
    #[must_use]
    pub fn loss_rate(&self) -> f64 {
        if self.packets_offered == 0 {
            0.0
        } else {
            self.packets_lost as f64 / self.packets_offered as f64
        }
    }

    /// Fold another counter set into this one (used when aggregating
    /// across links or runs).
    pub fn merge(&mut self, other: &LinkStats) {
        self.packets_offered += other.packets_offered;
        self.bytes_offered += other.bytes_offered;
        self.packets_delivered += other.packets_delivered;
        self.bytes_delivered += other.bytes_delivered;
        self.packets_lost += other.packets_lost;
        self.packets_corrupted += other.packets_corrupted;
        self.packets_reordered += other.packets_reordered;
        self.packets_duplicated += other.packets_duplicated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_rate_handles_empty() {
        assert_eq!(LinkStats::default().loss_rate(), 0.0);
    }

    #[test]
    fn loss_rate_is_lost_over_offered() {
        let s = LinkStats {
            packets_offered: 200,
            packets_lost: 10,
            ..LinkStats::default()
        };
        assert!((s.loss_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = LinkStats {
            packets_offered: 1,
            bytes_offered: 2,
            packets_delivered: 3,
            bytes_delivered: 4,
            packets_lost: 5,
            packets_corrupted: 6,
            packets_reordered: 7,
            packets_duplicated: 8,
        };
        a.merge(&a.clone());
        assert_eq!(a.packets_offered, 2);
        assert_eq!(a.bytes_delivered, 8);
        assert_eq!(a.packets_reordered, 14);
        assert_eq!(a.packets_duplicated, 16);
    }
}
