//! One PDES worker: a partition's nodes, their routing tables, the
//! links they transmit on, and a local event queue.
//!
//! A worker advances in windows granted by the
//! [`Synchronizer`](crate::synchronizer::Synchronizer): each round it
//! publishes its earliest pending event, helps compute the LBTS, and
//! processes every local event strictly before `LBTS + lookahead`.
//! Deliveries to nodes on other workers travel through the bounded
//! [`ChannelMatrix`](crate::synchronizer::ChannelMatrix), carrying the
//! event key the sender assigned (the sender owns both the link and
//! the origin node's sequence counter, so keys are identical to the
//! serial oracle's). Trace and telemetry *events* are logged with
//! replay keys and merged in deterministic order by the engine;
//! counters and histograms merge exactly and need no ordering.

use bytecache_packet::Packet;
use bytecache_telemetry::{Event as TelemetryEvent, EventKind, Recorder};

use crate::fxhash::RouteMap;
use crate::link::{LinkState, TxVerdict};
use crate::node::{Action, Context, NodeId};
use crate::sim::{Event, EventKey, Queued, ReplayKey, SimNode};
use crate::synchronizer::{ChannelMatrix, CrossMsg, Halted, Synchronizer};
use crate::time::SimTime;
use crate::trace::OwnedTraceEvent;
use crate::wheel::{EventQueue, QueueKind};

pub(crate) struct Worker {
    pub(crate) id: usize,
    pub(crate) now: SimTime,
    pub(crate) queue: EventQueue,
    /// Global node id → local slot (dense over all nodes).
    pub(crate) node_slot: Vec<Option<usize>>,
    /// Owned nodes as `(global id, node)`, in ascending id order.
    pub(crate) nodes: Vec<(usize, Box<dyn SimNode>)>,
    /// Routing tables, parallel to `nodes`.
    pub(crate) routes: Vec<RouteMap>,
    /// Per-origin event counters, parallel to `nodes`.
    pub(crate) origin_seqs: Vec<u64>,
    /// Owned links (sender-side) as `(global id, state)`.
    pub(crate) links: Vec<(usize, LinkState)>,
    /// Outgoing adjacency parallel to `nodes`: `(to, slot in links)`
    /// pairs sorted by `to` (binary-searched per transmit, like the
    /// simulator's adjacency).
    pub(crate) out_links: Vec<Vec<(NodeId, usize)>>,
    /// Full node → worker assignment (for remote sends).
    pub(crate) assignment: Vec<usize>,
    pub(crate) lookahead_us: u64,
    pub(crate) telemetry: Recorder,
    pub(crate) tele_events: Vec<(ReplayKey, TelemetryEvent)>,
    pub(crate) trace_enabled: bool,
    pub(crate) traces: Vec<(ReplayKey, OwnedTraceEvent)>,
    pub(crate) no_route_drops: u64,
    pub(crate) events_processed: u64,
    /// Key of the event currently being processed (replay-key base).
    pub(crate) cur_key: EventKey,
    pub(crate) emit_trace: u32,
    pub(crate) emit_tele: u32,
    /// Reused buffer for node-emitted actions (one dispatch at a time
    /// per worker; avoids an allocation per event).
    action_scratch: Vec<Action>,
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        now: SimTime,
        total_nodes: usize,
        assignment: Vec<usize>,
        lookahead_us: u64,
        queue_kind: QueueKind,
        telemetry_on: bool,
        trace_on: bool,
    ) -> Self {
        Worker {
            id,
            now,
            queue: EventQueue::new(queue_kind),
            node_slot: vec![None; total_nodes],
            nodes: Vec::new(),
            routes: Vec::new(),
            origin_seqs: Vec::new(),
            links: Vec::new(),
            out_links: Vec::new(),
            assignment,
            lookahead_us,
            telemetry: if telemetry_on {
                Recorder::enabled()
            } else {
                Recorder::disabled()
            },
            tele_events: Vec::new(),
            trace_enabled: trace_on,
            traces: Vec::new(),
            no_route_drops: 0,
            events_processed: 0,
            cur_key: EventKey {
                at: now,
                origin: 0,
                seq: 0,
            },
            emit_trace: 0,
            emit_tele: 0,
            action_scratch: Vec::new(),
        }
    }

    /// Adopt a node (and its routes and origin counter) during
    /// distribution. Must be called in ascending id order.
    pub(crate) fn adopt_node(
        &mut self,
        id: usize,
        node: Box<dyn SimNode>,
        routes: RouteMap,
        origin_seq: u64,
    ) {
        self.node_slot[id] = Some(self.nodes.len());
        self.nodes.push((id, node));
        self.routes.push(routes);
        self.origin_seqs.push(origin_seq);
        self.out_links.push(Vec::new());
    }

    /// Adopt a link this worker's nodes transmit on.
    pub(crate) fn adopt_link(&mut self, id: usize, from: NodeId, to: NodeId, link: LinkState) {
        let slot = self.slot_of(from);
        let adj = &mut self.out_links[slot];
        let pos = adj
            .binary_search_by_key(&to.0, |&(t, _)| t.0)
            .expect_err("duplicate link adopted");
        adj.insert(pos, (to, self.links.len()));
        self.links.push((id, link));
    }

    fn slot_of(&self, node: NodeId) -> usize {
        self.node_slot[node.0].expect("event targeted a node this worker does not own")
    }

    fn next_key(&mut self, at: SimTime, origin: NodeId) -> EventKey {
        let slot = self.slot_of(origin);
        let seq = self.origin_seqs[slot];
        self.origin_seqs[slot] += 1;
        EventKey {
            at,
            origin: origin.0 as u64,
            seq,
        }
    }

    fn log_trace(&mut self, ev: OwnedTraceEvent) {
        self.traces.push(((1, self.cur_key, self.emit_trace), ev));
        self.emit_trace += 1;
    }

    fn log_tele_event(&mut self, ev: TelemetryEvent) {
        if self.telemetry.is_enabled() {
            self.tele_events
                .push(((1, self.cur_key, self.emit_tele), ev));
            self.emit_tele += 1;
        }
    }

    /// The conservative window loop. Returns `Ok(())` on normal
    /// completion (global idle, or the time limit passed) and
    /// `Err(Halted)` when another worker aborted the run.
    pub(crate) fn run(
        &mut self,
        sync: &Synchronizer,
        chans: &ChannelMatrix,
        limit: Option<SimTime>,
    ) -> Result<(), Halted> {
        let limit_us = limit.map(SimTime::as_micros);
        loop {
            let next_us = self
                .queue
                .peek_key()
                .map(|k| k.at.as_micros())
                .unwrap_or(u64::MAX);
            sync.publish(self.id, next_us);
            // Barrier 1: all publishes visible, all channels empty
            // (drains of the previous round happened before its
            // publish; sends only happen inside windows).
            sync.barrier()?;
            let lbts = sync.lbts_us();
            let stop = match limit_us {
                Some(l) => lbts > l,
                None => lbts == u64::MAX,
            };
            if stop {
                // Every worker computes the same LBTS from the same
                // slots, so all of them stop here together.
                return Ok(());
            }
            let wend_us = match limit_us {
                Some(l) => lbts
                    .saturating_add(self.lookahead_us)
                    .min(l.saturating_add(1)),
                None => lbts.saturating_add(self.lookahead_us),
            };
            while let Some(head) = self.queue.peek_key() {
                if head.at.as_micros() >= wend_us {
                    break;
                }
                let q = self.queue.pop().expect("peeked");
                self.process(q, sync, chans)?;
            }
            // Barrier 2: every send of this window has been enqueued;
            // draining now leaves the channels empty for the next
            // round's publish.
            sync.barrier()?;
            self.drain_inboxes(chans);
        }
    }

    fn drain_inboxes(&mut self, chans: &ChannelMatrix) {
        for from in 0..chans.workers() {
            if from == self.id {
                continue;
            }
            while let Some(msg) = chans.channel(from, self.id).try_recv() {
                self.queue.push(Queued {
                    key: msg.key,
                    event: Event::Deliver {
                        to: msg.to,
                        packet: msg.packet,
                    },
                });
            }
        }
    }

    fn process(
        &mut self,
        q: Queued,
        sync: &Synchronizer,
        chans: &ChannelMatrix,
    ) -> Result<(), Halted> {
        debug_assert!(q.key.at >= self.now, "time went backwards");
        self.now = q.key.at;
        self.cur_key = q.key;
        self.emit_trace = 0;
        self.emit_tele = 0;
        self.events_processed += 1;
        let total = sync.bump_event();
        assert!(
            total <= sync.budget(),
            "event budget exhausted ({} events): likely a protocol loop",
            sync.budget()
        );
        match q.event {
            Event::Deliver { to, packet } => {
                self.telemetry.count("sim.delivers", 1);
                if self.trace_enabled {
                    self.log_trace(OwnedTraceEvent::Deliver {
                        at: self.now,
                        to,
                        packet: packet.clone(),
                    });
                }
                let slot = self.slot_of(to);
                let mut actions = std::mem::take(&mut self.action_scratch);
                let mut ctx = Context {
                    now: self.now,
                    node: to,
                    actions: &mut actions,
                };
                self.nodes[slot].1.on_packet(packet, &mut ctx);
                let done = self.apply_actions(to, &mut actions, sync, chans);
                actions.clear();
                self.action_scratch = actions;
                done?;
            }
            Event::Timer { node, token } => {
                let slot = self.slot_of(node);
                let mut actions = std::mem::take(&mut self.action_scratch);
                let mut ctx = Context {
                    now: self.now,
                    node,
                    actions: &mut actions,
                };
                self.nodes[slot].1.on_timer(token, &mut ctx);
                let done = self.apply_actions(node, &mut actions, sync, chans);
                actions.clear();
                self.action_scratch = actions;
                done?;
            }
            Event::RouteChange { node, dst, next } => {
                let slot = self.slot_of(node);
                match next {
                    Some(n) => {
                        self.routes[slot].insert(dst, n);
                    }
                    None => {
                        self.routes[slot].remove(&dst);
                    }
                }
            }
        }
        Ok(())
    }

    fn apply_actions(
        &mut self,
        node: NodeId,
        actions: &mut Vec<Action>,
        sync: &Synchronizer,
        chans: &ChannelMatrix,
    ) -> Result<(), Halted> {
        for action in actions.drain(..) {
            match action {
                Action::Forward(packet) => self.route_and_transmit(node, packet, sync, chans)?,
                Action::Timer(delay, token) => {
                    let key = self.next_key(self.now + delay, node);
                    self.queue.push(Queued {
                        key,
                        event: Event::Timer { node, token },
                    });
                }
            }
        }
        Ok(())
    }

    fn route_and_transmit(
        &mut self,
        from: NodeId,
        packet: Packet,
        sync: &Synchronizer,
        chans: &ChannelMatrix,
    ) -> Result<(), Halted> {
        let slot = self.slot_of(from);
        let Some(&next) = self.routes[slot].get(&packet.ip.dst) else {
            self.no_route_drops += 1;
            if self.telemetry.is_enabled() {
                let ev = TelemetryEvent::new(EventKind::NoRoute)
                    .at_us(self.now.as_micros())
                    .flow(packet.flow().stable_hash())
                    .details(from.0 as u64, 0);
                self.log_tele_event(ev);
            }
            if self.trace_enabled {
                self.log_trace(OwnedTraceEvent::NoRoute {
                    at: self.now,
                    from,
                    packet,
                });
            }
            return Ok(());
        };
        let adj = &self.out_links[slot];
        let link_slot = adj
            .binary_search_by_key(&next.0, |&(t, _)| t.0)
            .map(|pos| adj[pos].1)
            .unwrap_or_else(|_| panic!("route {from} -> {next} without a link"));
        let wire = packet.wire_len();
        self.telemetry.count("sim.transmits", 1);
        if self.trace_enabled {
            self.log_trace(OwnedTraceEvent::Transmit {
                at: self.now,
                from,
                to: next,
                packet: packet.clone(),
            });
        }
        let verdict = self.links[link_slot].1.transmit(self.now, wire, None);
        match verdict {
            TxVerdict::Lost => {
                if self.telemetry.is_enabled() {
                    let ev = TelemetryEvent::new(EventKind::PacketLost)
                        .at_us(self.now.as_micros())
                        .flow(packet.flow().stable_hash())
                        .details(from.0 as u64, wire as u64);
                    self.log_tele_event(ev);
                }
                if self.trace_enabled {
                    self.log_trace(OwnedTraceEvent::Lost {
                        at: self.now,
                        from,
                        to: next,
                        packet,
                    });
                }
            }
            TxVerdict::Corrupted => {
                if self.telemetry.is_enabled() {
                    let ev = TelemetryEvent::new(EventKind::PacketCorrupted)
                        .at_us(self.now.as_micros())
                        .flow(packet.flow().stable_hash())
                        .details(from.0 as u64, wire as u64);
                    self.log_tele_event(ev);
                }
                if self.trace_enabled {
                    self.log_trace(OwnedTraceEvent::Corrupted {
                        at: self.now,
                        from,
                        to: next,
                        packet,
                    });
                }
            }
            TxVerdict::Deliver { arrive } | TxVerdict::Reorder { arrive } => {
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .record("sim.hop_latency_us", (arrive - self.now).as_micros());
                }
                self.deliver(from, next, arrive, packet, sync, chans)?;
            }
            TxVerdict::Duplicate { arrive, copy } => {
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .record("sim.hop_latency_us", (arrive - self.now).as_micros());
                }
                // Copy first, then the original (historical insertion
                // order — the serial oracle assigns keys the same way).
                self.deliver(from, next, copy, packet.clone(), sync, chans)?;
                self.deliver(from, next, arrive, packet, sync, chans)?;
            }
        }
        Ok(())
    }

    /// Schedule a delivery: locally when this worker owns the receiver,
    /// otherwise through the boundary channel. Blocks (draining its own
    /// inboxes to break cycles) while the channel is full.
    fn deliver(
        &mut self,
        from: NodeId,
        to: NodeId,
        at: SimTime,
        packet: Packet,
        sync: &Synchronizer,
        chans: &ChannelMatrix,
    ) -> Result<(), Halted> {
        let key = self.next_key(at, from);
        debug_assert!(to.0 < self.assignment.len(), "node id out of bounds");
        let target = self.assignment[to.0];
        if target == self.id {
            self.queue.push(Queued {
                key,
                event: Event::Deliver { to, packet },
            });
            return Ok(());
        }
        let mut msg = CrossMsg { key, to, packet };
        loop {
            match chans.channel(self.id, target).try_send(msg) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    if sync.is_halted() {
                        return Err(Halted);
                    }
                    msg = back;
                    // Make room on the other side of any cycle.
                    self.drain_inboxes(chans);
                    std::thread::yield_now();
                }
            }
        }
    }
}
