//! The parallel run orchestrator: partition, distribute, synchronize,
//! merge back.
//!
//! A parallel run temporarily moves the simulator's nodes, routing
//! tables, links and pending events into per-worker
//! [`Worker`](crate::worker::Worker)s, executes the conservative
//! window loop on scoped threads, and merges everything back in
//! deterministic (worker, node-id) order. The public `Simulator` API
//! is unchanged: `run_until`/`run_until_idle` work across repeated
//! calls because all state — origin counters, link RNG streams,
//! serialization backlogs, leftover events — round-trips through the
//! workers.
//!
//! Degenerate cases fall back to the serial deterministic loop, which
//! produces identical output by construction: a single worker, zero
//! lookahead (a cross-partition link with no propagation delay would
//! stall the window protocol), or an empty topology.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::link::LinkState;
use crate::node::NodeId;
use crate::partition::PartitionPlan;
use crate::sim::{Event, ExecMode, SimNode, Simulator};
use crate::synchronizer::{ChannelMatrix, Synchronizer};
use crate::time::SimTime;
use crate::worker::Worker;

/// Bound on each inter-worker channel; senders finding it full drain
/// their own inboxes and retry, so the bound never deadlocks.
const CHANNEL_CAPACITY: usize = 16_384;

/// Execute a parallel run: to `limit` if given, else to global idle.
pub(crate) fn run(sim: &mut Simulator, workers: usize, limit: Option<SimTime>) -> SimTime {
    debug_assert!(matches!(sim.mode, ExecMode::Parallel { .. }));
    // on_start runs inline on the caller thread, exactly like the
    // serial oracle (node-id order, environment events already queued).
    sim.start_if_needed();

    let total_nodes = sim.nodes.len();
    let w = workers.max(1).min(total_nodes.max(1));
    let assignment = match sim.partition.clone() {
        Some(a) => {
            assert_eq!(
                a.len(),
                total_nodes,
                "partition must assign every node a worker"
            );
            a
        }
        None => PartitionPlan::blocks(total_nodes, w),
    };
    let link_states = &sim.links;
    let plan = PartitionPlan::new(
        assignment,
        w,
        sim.out_links.iter().enumerate().flat_map(|(from, outs)| {
            outs.iter().map(move |&(to, id)| {
                (from, to.0, link_states[id.0].config.propagation.as_micros())
            })
        }),
    );

    if w <= 1 || total_nodes == 0 || plan.lookahead_us == 0 {
        return sim.run_serial(limit);
    }

    // ---- distribute -----------------------------------------------------
    let telemetry_on = sim.telemetry.is_enabled();
    let trace_on = sim.trace.is_some();
    let queue_kind = sim.queue.kind();
    let mut crew: Vec<Worker> = (0..w)
        .map(|id| {
            Worker::new(
                id,
                sim.now,
                total_nodes,
                plan.assignment.clone(),
                plan.lookahead_us,
                queue_kind,
                telemetry_on,
                trace_on,
            )
        })
        .collect();

    let nodes = std::mem::take(&mut sim.nodes);
    let routes = std::mem::take(&mut sim.routes);
    let origin_seqs = std::mem::take(&mut sim.origin_seqs);
    for ((id, node), (route, oseq)) in nodes
        .into_iter()
        .enumerate()
        .zip(routes.into_iter().zip(origin_seqs))
    {
        crew[plan.assignment[id]].adopt_node(id, node, route, oseq);
    }

    let links = std::mem::take(&mut sim.links);
    let mut endpoints: Vec<Option<(NodeId, NodeId)>> = vec![None; links.len()];
    for (from, outs) in sim.out_links.iter().enumerate() {
        for &(to, id) in outs {
            endpoints[id.0] = Some((NodeId(from), to));
        }
    }
    for (id, link) in links.into_iter().enumerate() {
        let (from, to) = endpoints[id].expect("link without endpoints");
        // The *sender's* worker owns the link: serialization backlog,
        // channel RNG draws and stats stay deterministic there.
        crew[plan.assignment[from.0]].adopt_link(id, from, to, link);
    }

    while let Some(q) = sim.queue.pop() {
        let target = match &q.event {
            Event::Deliver { to, .. } => to.0,
            Event::Timer { node, .. } => node.0,
            Event::RouteChange { node, .. } => node.0,
        };
        crew[plan.assignment[target]].queue.push(q);
    }

    // ---- run ------------------------------------------------------------
    let sync = Synchronizer::new(w, sim.events_processed, sim.event_budget);
    let chans = ChannelMatrix::new(w, CHANNEL_CAPACITY);
    let results: Vec<Result<Worker, Box<dyn std::any::Any + Send>>> = std::thread::scope(|s| {
        let sync = &sync;
        let chans = &chans;
        let handles: Vec<_> = crew
            .into_iter()
            .map(|mut wk| {
                s.spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        // Err(Halted) means a peer panicked; the peer's
                        // payload is re-raised by the caller below.
                        let _ = wk.run(sync, chans, limit);
                        wk
                    }));
                    if out.is_err() {
                        sync.halt();
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(Err))
            .collect()
    });

    let mut first_panic = None;
    let mut done: Vec<Worker> = Vec::new();
    for r in results {
        match r {
            Ok(wk) => done.push(wk),
            Err(p) => {
                if first_panic.is_none() {
                    first_panic = Some(p);
                }
            }
        }
    }
    if let Some(p) = first_panic {
        // The simulator is poisoned (some state stayed on the panicked
        // worker); surface the original panic to the caller.
        resume_unwind(p);
    }
    done.sort_by_key(|wk| wk.id);

    // ---- merge back (deterministic: worker order, node-id order) --------
    let mut nodes_back: Vec<Option<Box<dyn SimNode>>> = (0..total_nodes).map(|_| None).collect();
    let mut routes_back: Vec<Option<crate::fxhash::RouteMap>> =
        (0..total_nodes).map(|_| None).collect();
    let mut oseq_back = vec![0u64; total_nodes];
    let mut links_back: Vec<Option<LinkState>> = (0..endpoints.len()).map(|_| None).collect();
    let mut max_now = sim.now;
    for wk in done {
        let Worker {
            now,
            mut queue,
            nodes,
            routes,
            origin_seqs,
            links,
            telemetry,
            mut tele_events,
            mut traces,
            no_route_drops,
            ..
        } = wk;
        max_now = max_now.max(now);
        sim.no_route_drops += no_route_drops;
        sim.telemetry.merge(&telemetry);
        sim.det_tevents.append(&mut tele_events);
        sim.det_traces.append(&mut traces);
        for ((id, node), (route, oseq)) in
            nodes.into_iter().zip(routes.into_iter().zip(origin_seqs))
        {
            nodes_back[id] = Some(node);
            routes_back[id] = Some(route);
            oseq_back[id] = oseq;
        }
        for (id, link) in links {
            links_back[id] = Some(link);
        }
        // The simulator's queue was fully drained at distribution, so
        // (for the wheel) it is unbased and re-bases at the merged
        // minimum on the next run — push order is immaterial.
        while let Some(q) = queue.pop() {
            sim.queue.push(q);
        }
    }
    sim.nodes = nodes_back
        .into_iter()
        .map(|n| n.expect("node lost in merge"))
        .collect();
    sim.routes = routes_back
        .into_iter()
        .map(|r| r.expect("routes lost in merge"))
        .collect();
    sim.origin_seqs = oseq_back;
    sim.links = links_back
        .into_iter()
        .map(|l| l.expect("link lost in merge"))
        .collect();
    sim.events_processed = sync.events_total();
    // Replay trace and telemetry events in canonical order (identical
    // to the serial oracle's flush).
    sim.flush_det_logs();
    sim.now = match limit {
        Some(t) => max_now.max(t),
        None => max_now,
    };
    sim.now
}
