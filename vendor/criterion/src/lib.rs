//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness subset this workspace's benches use:
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `throughput`/`sample_size`/`bench_function`/`bench_with_input`, and
//! `Bencher::iter`. Timing is real (monotonic clock around the closure,
//! warmup then `sample_size` samples) and results print as mean and
//! minimum ns/iter plus MiB/s when a byte throughput is set — but there
//! is no statistical analysis, no outlier rejection, no HTML report,
//! and no saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declared by a benchmark, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Build `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Bare id with no parameter part.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly, recording wall-clock samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one untimed call, then calibrate iterations per
        // sample so very fast routines aren't clock-noise bound.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed();
        let target = Duration::from_millis(10);
        self.iters_per_sample = if once >= target {
            1
        } else {
            let per = once.as_nanos().max(50) as u64;
            (target.as_nanos() as u64 / per).clamp(1, 100_000)
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare work-per-iteration for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Shorten/extend measurement; accepted for API compatibility (the
    /// stand-in sizes measurement from `sample_size` alone).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            iters_per_sample: 1,
        };
        f(&mut bencher);
        report(&label, &samples, self.throughput);
        self
    }

    /// Run one benchmark that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// Accepts the label shapes criterion takes: strings and `BenchmarkId`.
pub trait IntoBenchmarkId {
    /// Render the label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

fn report(label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mean_ns = samples.iter().map(|d| d.as_nanos()).sum::<u128>() as f64 / samples.len() as f64;
    let min_ns = samples.iter().map(|d| d.as_nanos()).min().unwrap_or(0) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if mean_ns > 0.0 => {
            let mib_s = b as f64 / (1024.0 * 1024.0) / (mean_ns / 1e9);
            format!("  {mib_s:>10.1} MiB/s")
        }
        Some(Throughput::Elements(e)) if mean_ns > 0.0 => {
            let elem_s = e as f64 / (mean_ns / 1e9);
            format!("  {elem_s:>10.0} elem/s")
        }
        _ => String::new(),
    };
    println!(
        "{label:<48} mean {:>12.0} ns/iter  min {:>12.0} ns/iter{rate}",
        mean_ns, min_ns
    );
}

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = id.into_benchmark_id();
        let sample_size = self.default_sample_size;
        let mut samples = Vec::with_capacity(sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size,
            iters_per_sample: 1,
        };
        f(&mut bencher);
        report(&label, &samples, None);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        let mut ran = 0u32;
        g.bench_function("sum", |b| {
            ran += 1;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert_eq!(ran, 1);
    }
}
