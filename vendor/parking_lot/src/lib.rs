//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` API shape this workspace uses — `Mutex`
//! and `RwLock` whose guards come back without a `Result` — and shares
//! its poisoning stance: a panicked holder does not poison the lock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock; `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves safety).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock; guards come back without a poison `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5u32);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
