//! Offline stand-in for the `rand` crate.
//!
//! Provides the API subset this workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool, gen}` and
//! `distributions::{Distribution, WeightedIndex}` — over a xoshiro256++
//! generator seeded through SplitMix64. Sequences are deterministic for
//! a given seed (the property every simulation here relies on) but are
//! NOT the real `StdRng` (ChaCha12) stream and carry no cryptographic
//! guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Ranges (and other argument shapes) `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(v)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type.
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(v)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// High-level sampling methods, blanket-implemented for bit sources.
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0,1]");
        unit_f64(self) < p
    }

    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Fill a byte slice with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator used throughout the workspace
    /// (xoshiro256++ here; the real crate's `StdRng` is ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace never needs a distinct small generator.
    pub type SmallRng = StdRng;
}

/// Distribution sampling (the `WeightedIndex` subset).
pub mod distributions {
    use super::RngCore;
    use std::borrow::Borrow;

    /// A sampleable distribution over `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were supplied.
        NoItem,
        /// A weight was negative or non-finite.
        InvalidWeight,
        /// All weights are zero.
        AllWeightsZero,
    }

    impl core::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                WeightedError::NoItem => f.write_str("no weights"),
                WeightedError::InvalidWeight => f.write_str("invalid weight"),
                WeightedError::AllWeightsZero => f.write_str("all weights zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices `0..n` proportionally to the given weights.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
    }

    impl WeightedIndex {
        /// Build from an iterator of weights.
        ///
        /// # Errors
        ///
        /// [`WeightedError`] on empty, negative, non-finite, or all-zero
        /// weights.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: std::borrow::Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let total = *self.cumulative.last().expect("non-empty");
            let x = super::unit_f64(rng) * total;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..8).map(|_| a.gen_range(0..1000)).collect();
        let diff: Vec<u64> = (0..8).map(|_| c.gen_range(0..1000)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5i64..=9);
            assert!((5..=9).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut r = StdRng::seed_from_u64(3);
        let d = WeightedIndex::new([1.0, 0.0, 9.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[d.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "counts={counts:?}");
        assert!(WeightedIndex::new(Vec::<f64>::new().iter()).is_err());
        assert!(WeightedIndex::new([0.0]).is_err());
        assert!(WeightedIndex::new([-1.0]).is_err());
    }
}
