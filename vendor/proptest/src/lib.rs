//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, `any::<T>()`, integer-range and
//! tuple strategies, `collection::vec`, `sample::Index`, `prop_oneof!`,
//! and the `proptest!` macro with `ProptestConfig::with_cases`.
//!
//! Divergences from real proptest: cases are drawn from a deterministic
//! per-test seed (derived from the test name) rather than OS entropy,
//! there is no shrinking — a failing case reports its case number and
//! re-panics — and `prop_assert*` are plain `assert*` (they panic
//! instead of returning `Err`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// FNV-1a over a string; used to give each test its own seed stream.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// How test values of some type are generated.
///
/// Object-safe: `Box<dyn Strategy<Value = T>>` works; the combinator
/// methods are gated on `Sized`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the candidate strategies; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mild edge bias: extremes shake out off-by-one bugs
                // that uniform draws almost never hit.
                match rng.below(16) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    _ => {
                        let lo = rng.next_u64();
                        let hi = rng.next_u64();
                        (((hi as u128) << 64) | lo as u128) as $t
                    }
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                // Edge bias as in `Arbitrary` for integers.
                let off = match rng.below(16) {
                    0 => 0,
                    1 => span - 1,
                    _ => u128::from(rng.next_u64()) % span,
                };
                self.start.wrapping_add(off as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let off = match rng.below(16) {
                    0 => 0,
                    1 => span - 1,
                    _ => u128::from(rng.next_u64()) % span,
                };
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Collection strategies (`collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Length specification for [`collection::vec`]; pins unsuffixed range
/// literals to `usize` the way real proptest's `SizeRange` does.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo) as u64 + 1;
        match rng.below(8) {
            0 => self.lo,
            1 => self.hi_inclusive,
            _ => self.lo + rng.below(span) as usize,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Sampling helpers (`sample::Index`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An abstract position, resolved against a concrete length with
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolve to a position in `[0, len)`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Per-run configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Default config with the case count replaced.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert within a property test (plain `assert!` in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` (the attribute is written inside the macro, as
/// in real proptest) that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::from_seed(
                    __base ^ (u64::from(__case)).wrapping_mul(0x2545_F491_4F6C_DD1D),
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __result {
                    eprintln!(
                        "proptest: {} failed at case {}/{} (no shrinking in offline stand-in)",
                        stringify!($name), __case, __config.cases,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// The customary glob import: strategies, macros, and the `prop` alias.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_lengths_in_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        let s = crate::collection::vec(any::<u8>(), 3..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let r = 10u32..=12;
        for _ in 0..200 {
            assert!((10..=12).contains(&r.generate(&mut rng)));
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = crate::TestRng::from_seed(2);
        let s = prop_oneof![Just(1u8), Just(2u8), 5u8..7];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&5));
    }

    #[test]
    fn deterministic_per_seed() {
        let s = (any::<u64>(), 0i64..100).prop_map(|(a, b)| a ^ b as u64);
        let mut r1 = crate::TestRng::from_seed(9);
        let mut r2 = crate::TestRng::from_seed(9);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(v in prop::collection::vec(any::<u8>(), 0..16), x in 1u8..=4) {
            prop_assert!(v.len() < 16);
            prop_assert!((1..=4).contains(&x));
            prop_assert_eq!(x, x);
            prop_assert_ne!(u16::from(x), 999);
        }
    }
}
