//! Offline stand-in for the `bytes` crate, providing the subset of the
//! API this workspace uses: [`Bytes`], a cheaply cloneable, sliceable,
//! reference-counted byte buffer.
//!
//! Clones and `slice()` are O(1): they share one `Arc<Vec<u8>>`
//! allocation and adjust a `(start, end)` view. `From<Vec<u8>>` is also
//! O(1) — the vector is moved behind the `Arc` without copying its
//! contents — so producers can build a buffer in a plain `Vec<u8>` and
//! freeze it into a shareable handle for free. Semantics match the real
//! crate for the operations exposed here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

/// A cheaply cloneable, immutable, sliceable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

/// Shared storage for empty buffers so `Bytes::new()` never allocates
/// byte storage (only clones one process-wide `Arc`).
static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();

impl Bytes {
    /// An empty buffer (no byte-storage allocation).
    #[must_use]
    pub fn new() -> Self {
        Bytes {
            data: Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new()))),
            start: 0,
            end: 0,
        }
    }

    /// Buffer wrapping a static slice (copied once into shared storage).
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// Buffer holding a copy of `data`.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }

    /// Length of the view in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view sharing the same storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The bytes as a plain slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the view into an owned `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// O(1): moves the vector behind the `Arc`; no byte copy.
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from_vec(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl core::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in core::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = core::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage_and_views_correctly() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(s2.len(), 2);
        assert!(Arc::ptr_eq(&b.data, &s2.data));
    }

    #[test]
    fn equality_across_representations() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b, Bytes::copy_from_slice(b"hello"));
        assert_eq!(b, b"hello");
        assert_eq!(b, b"hello".to_vec());
        assert_eq!(&b[..], b"hello");
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn out_of_bounds_slice_panics() {
        let _ = Bytes::from_static(b"abc").slice(1..9);
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![9u8; 64];
        let p = v.as_ptr();
        let b = Bytes::from(v);
        // The view must alias the original vector's storage: freezing a
        // Vec into Bytes moves it behind the Arc without copying.
        assert_eq!(b.as_slice().as_ptr(), p);
        let s = b.slice(8..16);
        assert_eq!(s.as_slice().as_ptr(), b.as_slice()[8..].as_ptr());
    }

    #[test]
    fn empty_buffers_share_storage() {
        let a = Bytes::new();
        let b = Bytes::default();
        assert!(Arc::ptr_eq(&a.data, &b.data));
        assert!(a.is_empty());
    }

    #[test]
    fn collect_and_iterate() {
        let b: Bytes = (0u8..5).collect();
        assert_eq!(b.iter().copied().sum::<u8>(), 10);
        assert_eq!(b.to_vec(), vec![0, 1, 2, 3, 4]);
    }
}
