//! Offline stand-in for `serde`.
//!
//! This workspace uses serde only for `#[derive(Serialize, Deserialize)]`
//! annotations on result/config structs; nothing actually serializes
//! through serde at runtime (reports are rendered by hand). The real
//! crate cannot be fetched in the offline build environment, so this
//! stub supplies blanket-implemented marker traits and (via the `derive`
//! feature) no-op derive macros, keeping every annotation compiling
//! without pulling in a serializer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
