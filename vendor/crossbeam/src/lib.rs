//! Offline stand-in for the `crossbeam::scope` API, backed by
//! `std::thread::scope` (stable since Rust 1.63, which makes the
//! external dependency unnecessary for the subset this workspace uses).
//!
//! Divergence from real crossbeam: a panicking child thread propagates
//! the panic out of [`scope`] instead of surfacing as `Err`; callers
//! that `.expect()` the result observe the same overall abort.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Handle for spawning threads inside a [`scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread; the closure receives the scope handle
    /// (crossbeam's signature) so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Create a scope in which borrowing threads can be spawned; all are
/// joined before this returns.
///
/// # Errors
///
/// Never returns `Err` in this stand-in (a child panic propagates as a
/// panic instead); the `Result` exists for crossbeam API compatibility.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicU32::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
