//! No-op `Serialize`/`Deserialize` derive macros for the offline serde
//! stand-in: the traits are blanket-implemented in the `serde` stub, so
//! the derives only need to exist and expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
