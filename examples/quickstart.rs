//! Quickstart: encode and decode a packet stream in memory.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p bytecache-experiments --example quickstart
//! ```
//!
//! This is the smallest end-to-end use of the library: an encoder and a
//! decoder sharing a configuration, a stream of packets with repeated
//! content, and the byte savings the fingerprint cache extracts.

use bytecache::{Decoder, DreConfig, Encoder, PacketMeta, PolicyKind};
use bytecache_packet::{FlowId, SeqNum};
use bytecache_workload::FileSpec;
use bytes::Bytes;
use std::net::Ipv4Addr;

fn main() {
    // Both ends of a deployment must share the configuration (window
    // size, fingerprint sampling, modulus).
    let config = DreConfig::default();
    let mut encoder = Encoder::new(config.clone(), PolicyKind::CacheFlush.build());
    let mut decoder = Decoder::new(config);

    // A synthetic object with realistic cross-packet redundancy,
    // packetized at the TCP MSS.
    let object = FileSpec::File1.build(256 * 1024, 7);
    let flow = FlowId {
        src: Ipv4Addr::new(10, 0, 0, 1),
        src_port: 80,
        dst: Ipv4Addr::new(10, 0, 0, 2),
        dst_port: 40_000,
    };

    let mut seq = 1u32;
    let mut wire_bytes = 0usize;
    for chunk in object.chunks(1460) {
        let payload = Bytes::copy_from_slice(chunk);
        let meta = PacketMeta {
            flow,
            seq: SeqNum::new(seq),
            payload_len: payload.len(),
            flow_index: 0, // the encoder recomputes this internally
        };
        // Encode: repeated regions become 14-byte encoding fields.
        let outcome = encoder.encode(&meta, &payload);
        wire_bytes += outcome.wire.len();

        // Decode: the decoder reconstructs the exact original bytes.
        let (restored, _feedback) = decoder.decode(&outcome.wire, &meta);
        let restored = restored.expect("no loss on this in-memory channel");
        assert_eq!(restored, payload, "byte caching must be transparent");

        seq = seq.wrapping_add(chunk.len() as u32);
    }

    let stats = encoder.stats();
    println!("packets encoded:        {}", stats.packets);
    println!("original bytes:         {}", stats.bytes_in);
    println!("bytes on the wire:      {wire_bytes}");
    println!(
        "byte ratio:             {:.3} ({:.1}% saved)",
        stats.byte_ratio(),
        (1.0 - stats.byte_ratio()) * 100.0
    );
    println!(
        "redundancy eliminated:  {:.1}% of payload bytes",
        stats.redundancy_fraction() * 100.0
    );
    println!(
        "avg distinct deps:      {:.2} packets (paper's File 1: ~4)",
        stats.avg_dependencies()
    );
}
