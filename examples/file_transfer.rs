//! File transfer through byte caching gateways over a lossy wireless
//! link — the paper's Figure 3 testbed, end to end.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p bytecache-experiments --example file_transfer -- [loss%]
//! ```
//!
//! Downloads the same object once without byte caching and once per
//! encoding policy, printing bytes on the wire, download time, and the
//! perceived loss rate. Try `-- 0`, `-- 2`, `-- 10` to watch the
//! trade-off the paper studies: savings survive loss, latency does not.

use bytecache::PolicyKind;
use bytecache_experiments::{run_scenario, ScenarioConfig};
use bytecache_workload::FileSpec;

fn main() {
    let loss_pct: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let loss = loss_pct / 100.0;
    let object = FileSpec::File1.build(587_567, 42);
    println!(
        "object: {} bytes (File 1), wireless link: 1 MB/s, {loss_pct}% loss\n",
        object.len()
    );

    let baseline = run_scenario(&ScenarioConfig::new(object.clone()).loss(loss).seed(1));
    let t0 = baseline.duration_secs().unwrap_or(f64::NAN);
    let b0 = baseline.wire_bytes();
    println!(
        "{:<16} {:>12} {:>10} {:>12} {:>12}",
        "policy", "wire bytes", "time (s)", "bytes ratio", "delay ratio"
    );
    println!(
        "{:<16} {:>12} {:>10.2} {:>12} {:>12}",
        "none", b0, t0, "1.000", "1.00"
    );

    for kind in [
        PolicyKind::Naive,
        PolicyKind::CacheFlush,
        PolicyKind::TcpSeq,
        PolicyKind::KDistance(8),
        PolicyKind::AckGated,
        PolicyKind::Adaptive,
    ] {
        let r = run_scenario(
            &ScenarioConfig::new(object.clone())
                .policy(kind)
                .loss(loss)
                .seed(1),
        );
        let time = r
            .duration_secs()
            .map_or("stalled".to_string(), |t| format!("{t:.2}"));
        let delay = r
            .duration_secs()
            .map_or("-".to_string(), |t| format!("{:.2}", t / t0));
        println!(
            "{:<16} {:>12} {:>10} {:>12.3} {:>12}   perceived loss {:.1}%{}",
            kind.label(),
            r.wire_bytes(),
            time,
            r.wire_bytes() as f64 / b0 as f64,
            delay,
            r.perceived_loss() * 100.0,
            if r.completed() { "" } else { "  [STALLED]" },
        );
    }
}
