//! Mid-download handoff: IP-layer byte caching survives node mobility
//! (paper §II).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p bytecache-experiments --example mobility
//! ```
//!
//! A client downloads through the byte caching gateway pair, then moves
//! to a new access network whose path bypasses both gateways. Packets in
//! flight on the old path are lost, but because the gateways never
//! touched the end-to-end TCP session, the client's next cumulative ACK
//! tells the server exactly what is missing and the download resumes on
//! the new path. A transparent TCP-splitting proxy (the deployment the
//! paper warns about) would stall here: the three TCP sessions it
//! created have unrelated sequence spaces.

use bytecache_experiments::mobility;
use bytecache_netsim::time::SimDuration;

fn main() {
    for handoff_ms in [100u64, 200, 400] {
        let r = mobility::run(587_567, SimDuration::from_millis(handoff_ms), 3);
        println!("handoff at {handoff_ms} ms:");
        println!(
            "  bytes before handoff: {:>7}   in-flight packets lost: {}",
            r.bytes_before_handoff, r.in_flight_drops
        );
        println!(
            "  completed: {} ({} bytes intact) in {:.2}s",
            r.completed,
            r.bytes_total,
            r.duration_secs.unwrap_or(f64::NAN)
        );
        assert!(r.completed, "IP-level byte caching must survive mobility");
        println!();
    }
    println!(
        "Every download completed despite losing the gateway path mid-\n\
         transfer: byte caching at the IP layer preserves end-to-end TCP."
    );
}
