//! The circular-dependency stall, step by step (paper Figures 4 & 5).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p bytecache-experiments --example stall_demo
//! ```
//!
//! Replays the exact event sequence of the paper's §IV analysis — a
//! packet lost between encoder and decoder, followed by TCP
//! retransmissions — under the naive policy (which loops forever) and
//! under each of the paper's three fixes (which all recover).

use bytecache::PolicyKind;
use bytecache_experiments::stalltrace;

fn main() {
    for policy in [
        PolicyKind::Naive,
        PolicyKind::CacheFlush,
        PolicyKind::TcpSeq,
        PolicyKind::KDistance(4),
        PolicyKind::AckGated,
    ] {
        println!("──────────────────────────────────────────────────────");
        for line in stalltrace::trace(policy, 6) {
            println!("{line}");
        }
        println!();
    }
    println!("──────────────────────────────────────────────────────");
    println!(
        "Summary: under the naive policy every retransmission of the lost\n\
         segment is encoded against a packet the decoder never received —\n\
         ultimately a cached copy of itself (Figure 5's cycle) — so the\n\
         decoder can never reconstruct it and TCP backs off exponentially\n\
         until the connection dies. Each §V policy breaks the cycle."
    );
}
